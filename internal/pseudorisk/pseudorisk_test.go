package pseudorisk_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"privascope/internal/anonymize"
	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/pseudorisk"
)

func evaluator(t testing.TB) *pseudorisk.Evaluator {
	t.Helper()
	e, err := pseudorisk.NewEvaluator(casestudy.TableIRecords(), casestudy.ResearchPolicy())
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return e
}

func TestPolicyValidate(t *testing.T) {
	good := casestudy.ResearchPolicy()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*pseudorisk.Policy)
	}{
		{"empty target", func(p *pseudorisk.Policy) { p.TargetField = " " }},
		{"negative closeness", func(p *pseudorisk.Policy) { p.Closeness = -1 }},
		{"zero confidence", func(p *pseudorisk.Policy) { p.Confidence = 0 }},
		{"confidence above one", func(p *pseudorisk.Policy) { p.Confidence = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := casestudy.ResearchPolicy()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid policy accepted")
			}
		})
	}
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := pseudorisk.NewEvaluator(nil, casestudy.ResearchPolicy()); err == nil {
		t.Error("nil table accepted")
	}
	bad := casestudy.ResearchPolicy()
	bad.TargetField = "ghost"
	if _, err := pseudorisk.NewEvaluator(casestudy.TableIRecords(), bad); err == nil {
		t.Error("policy targeting a missing column accepted")
	}
	e := evaluator(t)
	if e.Table() == nil || e.Policy().TargetField != "weight" {
		t.Error("accessors misbehave")
	}
}

func TestEvaluateReproducesTableI(t *testing.T) {
	e := evaluator(t)
	tests := []struct {
		name           string
		visible        []string
		wantFractions  []string
		wantViolations int
	}{
		{"height only", []string{"height"}, []string{"2/4", "2/4", "2/4", "2/4", "1/2", "1/2"}, 0},
		{"age only", []string{"age"}, []string{"2/2", "2/2", "3/4", "3/4", "1/4", "3/4"}, 2},
		{"age and height", []string{"age", "height"}, []string{"2/2", "2/2", "2/2", "2/2", "1/2", "1/2"}, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			result, err := e.Evaluate(tt.visible)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			got := make([]string, len(result.Risks))
			for i, f := range result.Fractions() {
				got[i] = f.String()
			}
			if !reflect.DeepEqual(got, tt.wantFractions) {
				t.Errorf("fractions = %v, want %v", got, tt.wantFractions)
			}
			if result.Violations != tt.wantViolations {
				t.Errorf("violations = %d, want %d", result.Violations, tt.wantViolations)
			}
			wantFraction := float64(tt.wantViolations) / 6
			if result.ViolationFraction != wantFraction {
				t.Errorf("violation fraction = %v, want %v", result.ViolationFraction, wantFraction)
			}
		})
	}
}

func TestEvaluateIgnoresTargetAndUnknownColumns(t *testing.T) {
	e := evaluator(t)
	// The target column and unknown fields must not act as quasi-identifiers.
	result, err := e.Evaluate([]string{"weight", "shoe_size_anon", "age"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(result.VisibleFields, []string{"age"}) {
		t.Errorf("visible fields = %v, want [age]", result.VisibleFields)
	}
	if result.Violations != 2 {
		t.Errorf("violations = %d, want 2 (age-only scenario)", result.Violations)
	}
	if result.Key() != "age" {
		t.Errorf("Key() = %q", result.Key())
	}
}

func TestEvaluateProgression(t *testing.T) {
	e := evaluator(t)
	results, err := e.EvaluateProgression([][]string{{"height"}, {"age"}, {"age", "height"}})
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for _, r := range results {
		counts = append(counts, r.Violations)
	}
	if !reflect.DeepEqual(counts, []int{0, 2, 4}) {
		t.Errorf("violation progression = %v, want [0 2 4] (Table I)", counts)
	}
}

func TestCheckThreshold(t *testing.T) {
	e := evaluator(t)
	results, err := e.EvaluateProgression([][]string{{"height"}, {"age"}, {"age", "height"}})
	if err != nil {
		t.Fatal(err)
	}
	// "a number of violations above 50% is unacceptable": 4/6 > 0.5 fails.
	err = pseudorisk.CheckThreshold(results, 0.5)
	if err == nil {
		t.Fatal("expected threshold violation")
	}
	if !errors.Is(err, pseudorisk.ErrThresholdExceeded) {
		t.Errorf("error should wrap ErrThresholdExceeded, got %v", err)
	}
	if !strings.Contains(err.Error(), "age+height") {
		t.Errorf("error should name the offending scenario: %v", err)
	}
	// A permissive threshold passes.
	if err := pseudorisk.CheckThreshold(results, 0.7); err != nil {
		t.Errorf("threshold 0.7 should pass, got %v", err)
	}
	// Empty results always pass.
	if err := pseudorisk.CheckThreshold(nil, 0); err != nil {
		t.Errorf("empty results should pass, got %v", err)
	}
}

func metricsLTS(t testing.TB) *core.PrivacyLTS {
	t.Helper()
	p, err := core.GenerateWithOptions(casestudy.Metrics(), core.Options{
		FlowOrdering:   core.OrderDataDriven,
		PotentialReads: core.PotentialReadsOff,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return p
}

func TestAnalyzeLTSFig4(t *testing.T) {
	p := metricsLTS(t)
	annotation, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{
		Actor:  casestudy.ActorResearcher,
		Policy: casestudy.ResearchPolicy(),
		Table:  casestudy.TableIRecords(),
	})
	if err != nil {
		t.Fatalf("AnalyzeLTS: %v", err)
	}
	if len(annotation.RiskTransitions) == 0 {
		t.Fatal("no risk transitions produced")
	}

	// Every risk transition starts from a state where the researcher has the
	// anonymised weight.
	for _, rt := range annotation.RiskTransitions {
		if !p.Has(rt.From, casestudy.ActorResearcher, "weight_anon") {
			t.Errorf("risk transition from %s but weight_anon not read there", rt.From)
		}
		if rt.LabelString() == "" {
			t.Error("empty label string")
		}
	}

	// The violation counts across at-risk states include the paper's 0, 2
	// and 4 (Fig. 4): no quasi-identifier read, only age, and age+height.
	seen := make(map[int]bool)
	for _, rt := range annotation.RiskTransitions {
		seen[rt.Result.Violations] = true
	}
	for _, want := range []int{0, 2, 4} {
		if !seen[want] {
			t.Errorf("no risk transition with %d violations; counts = %v", want, annotation.ViolationCounts())
		}
	}
	if annotation.MaxViolations() != 4 {
		t.Errorf("MaxViolations = %d, want 4", annotation.MaxViolations())
	}
	if len(annotation.Violations()) == 0 {
		t.Error("Violations() should list the violating transitions")
	}

	// Design-time gate: 4/6 violations exceed a 50% threshold.
	if err := annotation.CheckThreshold(0.5); err == nil {
		t.Error("CheckThreshold(0.5) should fail for the Table I data")
	}
	if err := annotation.CheckThreshold(0.99); err != nil {
		t.Errorf("CheckThreshold(0.99) should pass, got %v", err)
	}
}

func TestAnalyzeLTSDOT(t *testing.T) {
	p := metricsLTS(t)
	annotation, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{
		Actor:  casestudy.ActorResearcher,
		Policy: casestudy.ResearchPolicy(),
		Table:  casestudy.TableIRecords(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := annotation.DOT("fig4")
	if !strings.HasPrefix(out, "digraph fig4 {") {
		t.Errorf("DOT output malformed:\n%.80s", out)
	}
	if !strings.Contains(out, `style="dotted"`) {
		t.Error("risk transitions should be dotted (Fig. 4)")
	}
	if !strings.Contains(out, "violations") {
		t.Error("risk nodes should carry violation counts")
	}
	if strings.Count(out, "}") < 1 || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT output should remain a single closed graph")
	}
}

func TestAnalyzeLTSErrors(t *testing.T) {
	p := metricsLTS(t)
	table := casestudy.TableIRecords()
	policy := casestudy.ResearchPolicy()

	if _, err := pseudorisk.AnalyzeLTS(nil, pseudorisk.Options{Actor: "x", Policy: policy, Table: table}); err == nil {
		t.Error("nil LTS accepted")
	}
	if _, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{Actor: " ", Policy: policy, Table: table}); err == nil {
		t.Error("empty actor accepted")
	}
	if _, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{Actor: "ghost", Policy: policy, Table: table}); err == nil {
		t.Error("unknown actor accepted")
	}
	if _, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{Actor: casestudy.ActorResearcher, Policy: policy}); err == nil {
		t.Error("nil table accepted")
	}
	// An actor who may read the original field is not a pseudonymisation
	// risk (the disclosure analysis covers them).
	if _, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{
		Actor: casestudy.ActorDataManager, Policy: policy, Table: table,
	}); err == nil {
		t.Error("actor with access to the raw field accepted")
	}
	// An actor with no access to the anonymised field has no value risk.
	if _, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{
		Actor: casestudy.ActorClinician, Policy: policy, Table: table,
	}); err == nil {
		t.Error("actor without anon access accepted")
	}
	// A policy targeting a field with no pseudonymised form in the model.
	badPolicy := policy
	badPolicy.TargetField = "shoe_size"
	badTable := casestudy.TableIRecords().Clone()
	// Give the table the required target column so NewEvaluator passes and
	// the model check is exercised.
	_ = badTable
	if _, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{
		Actor: casestudy.ActorResearcher, Policy: badPolicy, Table: table,
	}); err == nil {
		t.Error("policy for unknown field accepted")
	}
}

func TestAnalyzeLTSFieldColumnMapping(t *testing.T) {
	// Rename the dataset columns and map the model's anon fields onto them.
	table := anonymize.MustTable(
		anonymize.Column{Name: "age_years", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "height_cm", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "weight", Role: anonymize.RoleSensitive},
	)
	src := casestudy.TableIRecords()
	for r := 0; r < src.NumRows(); r++ {
		age, _ := src.Value(r, "age")
		height, _ := src.Value(r, "height")
		weight, _ := src.Value(r, "weight")
		table.MustAddRow(age, height, weight)
	}
	p := metricsLTS(t)
	annotation, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{
		Actor:  casestudy.ActorResearcher,
		Policy: casestudy.ResearchPolicy(),
		Table:  table,
		FieldColumns: map[string]string{
			"age_anon":    "age_years",
			"height_anon": "height_cm",
		},
	})
	if err != nil {
		t.Fatalf("AnalyzeLTS with mapping: %v", err)
	}
	if annotation.MaxViolations() != 4 {
		t.Errorf("MaxViolations with mapped columns = %d, want 4", annotation.MaxViolations())
	}
}
