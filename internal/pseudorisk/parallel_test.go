package pseudorisk_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"privascope/internal/anonymize"
	"privascope/internal/pseudorisk"
)

// syntheticTable builds a deterministic dataset large enough to exercise the
// chunked class-building path.
func syntheticTable(rows int) *anonymize.Table {
	rng := rand.New(rand.NewSource(99))
	cities := []string{"berlin", "paris", "london", "madrid", "rome"}
	t := anonymize.MustTable(
		anonymize.Column{Name: "age", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "city", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "weight", Role: anonymize.RoleSensitive},
	)
	for i := 0; i < rows; i++ {
		t.MustAddRow(
			anonymize.Interval(float64(20+10*rng.Intn(6)), float64(30+10*rng.Intn(6))),
			anonymize.Cat(cities[rng.Intn(len(cities))]),
			anonymize.Num(float64(45+rng.Intn(90))),
		)
	}
	return t
}

func TestEvaluateProgressionIdenticalAcrossWorkerCounts(t *testing.T) {
	table := syntheticTable(6000)
	policy := pseudorisk.Policy{TargetField: "weight", Closeness: 5, Confidence: 0.9}
	progression := [][]string{nil, {"age"}, {"city"}, {"age", "city"}, {"city", "age"}}

	sequential, err := pseudorisk.NewEvaluatorWithOptions(table, policy, pseudorisk.EvaluatorOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sequential.EvaluateProgression(progression)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		e, err := pseudorisk.NewEvaluatorWithOptions(table, policy, pseudorisk.EvaluatorOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.EvaluateProgression(progression)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d progression diverges from sequential", workers)
		}
	}
}

func TestEvaluatorCachesScenarioResults(t *testing.T) {
	table := syntheticTable(500)
	policy := pseudorisk.Policy{TargetField: "weight", Closeness: 5, Confidence: 0.9}
	e, err := pseudorisk.NewEvaluator(table, policy)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.Evaluate([]string{"age", "city"})
	if err != nil {
		t.Fatal(err)
	}
	// Same canonical set, different spelling: unsorted order, target field
	// mixed in, unknown column ignored.
	second, err := e.Evaluate([]string{"city", "weight", "age", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if &first.Risks[0] != &second.Risks[0] {
		t.Error("equivalent scenario was recomputed instead of cached")
	}
	if e.Index().Misses() != 1 {
		t.Errorf("class-index misses = %d, want 1", e.Index().Misses())
	}
}

func TestEvaluatorSharedIndex(t *testing.T) {
	table := syntheticTable(500)
	policy := pseudorisk.Policy{TargetField: "weight", Closeness: 5, Confidence: 0.9}
	ix := anonymize.NewClassIndex(table, 2)
	e, err := pseudorisk.NewEvaluatorWithOptions(table, policy, pseudorisk.EvaluatorOptions{Workers: 2, Index: ix})
	if err != nil {
		t.Fatal(err)
	}
	if e.Index() != ix {
		t.Error("provided index not adopted")
	}
	if _, err := e.Evaluate([]string{"age", "city"}); err != nil {
		t.Fatal(err)
	}
	// The same partition is now visible to other analyses via the index.
	if _, err := anonymize.ReidentificationRiskIndexed(ix, []string{"age", "city"}, 0.2); err != nil {
		t.Fatal(err)
	}
	if ix.Hits() != 1 {
		t.Errorf("index hits = %d, want 1 (reident should reuse the scenario partition)", ix.Hits())
	}

	other := syntheticTable(10)
	if _, err := pseudorisk.NewEvaluatorWithOptions(other, policy, pseudorisk.EvaluatorOptions{Index: ix}); err == nil {
		t.Error("index over a different table accepted")
	}
}

func ExampleEvaluator_EvaluateProgression() {
	table := anonymize.MustTable(
		anonymize.Column{Name: "age", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "weight", Role: anonymize.RoleSensitive},
	)
	for _, row := range [][2]float64{{23, 50}, {23, 55}, {34, 70}, {34, 90}} {
		table.MustAddRow(anonymize.Num(row[0]), anonymize.Num(row[1]))
	}
	e, _ := pseudorisk.NewEvaluatorWithOptions(table,
		pseudorisk.Policy{TargetField: "weight", Closeness: 5, Confidence: 0.9},
		pseudorisk.EvaluatorOptions{Workers: 4})
	results, _ := e.EvaluateProgression([][]string{nil, {"age"}})
	for _, r := range results {
		fmt.Printf("visible=%v violations=%d\n", r.VisibleFields, r.Violations)
	}
	// Output:
	// visible=[] violations=0
	// visible=[age] violations=2
}
