package pseudorisk_test

import (
	"context"
	"errors"
	"testing"

	"privascope/internal/pseudorisk"
	"privascope/internal/synth"
	"privascope/internal/testutil"
)

func TestEvaluateProgressionContextPreCancelled(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	table := synth.HealthRecords(synth.HealthRecordsOptions{Rows: 20_000, Seed: 5})
	evaluator, err := pseudorisk.NewEvaluatorWithOptions(table,
		pseudorisk.Policy{TargetField: "weight", Closeness: 5, Confidence: 0.9},
		pseudorisk.EvaluatorOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	progression := [][]string{{"age"}, {"height"}, {"age", "height"}}
	if _, err := evaluator.EvaluateProgressionContext(ctx, progression); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The cancelled scenarios were not cached: a live caller computes them.
	results, err := evaluator.EvaluateProgressionContext(context.Background(), progression)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if len(results) != len(progression) {
		t.Fatalf("results = %d, want %d", len(results), len(progression))
	}
}
