package pseudorisk

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"privascope/internal/accesscontrol"
	"privascope/internal/anonymize"
	"privascope/internal/core"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// RiskTransition is one dotted risk transition of the paper's Fig. 4: from an
// at-risk state (the actor has accessed the pseudonymised form of the target
// field) towards the inference of the true value, scored against the
// dataset.
type RiskTransition struct {
	// From is the at-risk LTS state the transition starts from.
	From lts.StateID
	// Actor is the actor that could perform the inference.
	Actor string
	// TargetField is the sensitive field whose value could be inferred.
	TargetField string
	// ReadAnonFields are the pseudonymised fields the actor has accessed in
	// the From state (the paper's fieldsread), sorted.
	ReadAnonFields []string
	// Result is the dataset evaluation for the corresponding visible
	// columns.
	Result ScenarioResult
	// Violates reports whether the policy is violated for at least one
	// record.
	Violates bool
}

// LabelString renders the transition for traces and DOT output, e.g.
// "value-risk(weight) by researcher given [age, height]: 4 violations".
func (r RiskTransition) LabelString() string {
	return fmt.Sprintf("value-risk(%s) by %s given [%s]: %d violations",
		r.TargetField, r.Actor, strings.Join(r.ReadAnonFields, ", "), r.Result.Violations)
}

// Annotation is the result of layering pseudonymisation risk onto a privacy
// LTS. The underlying LTS is never modified; the annotation carries the
// additional risk transitions and can render the combined picture (Fig. 4).
type Annotation struct {
	// LTS is the analysed privacy LTS.
	LTS *core.PrivacyLTS
	// Actor is the analysed actor.
	Actor string
	// Policy is the violation policy.
	Policy Policy
	// RiskTransitions are the added risk transitions, one per at-risk state,
	// ordered by state ID.
	RiskTransitions []RiskTransition
}

// Options configures AnalyzeLTS.
type Options struct {
	// Actor is the actor under analysis (the researcher in case study IV-B).
	Actor string
	// Policy is the violation policy.
	Policy Policy
	// Table is the pseudonymised dataset the scores are computed from.
	// "The Risk score ... can only be calculated when data is present.
	// Hence, simulated data can be used at design time, whereas the model
	// can be applied to the running system to get a more accurate picture."
	Table *anonymize.Table
	// FieldColumns maps LTS field names to dataset column names. When a
	// pseudonymised field is not listed, its base name (without the _anon
	// suffix) is used.
	FieldColumns map[string]string
	// Workers bounds the evaluator's parallelism (class building, record
	// scoring); zero or negative selects one per CPU. The annotation is
	// identical for any worker count.
	Workers int
}

// AnalyzeLTS produces the pseudonymisation-risk annotation of a privacy LTS:
// for every reachable state in which the actor has accessed the
// pseudonymised form of the policy's target field, a risk transition is
// computed whose score derives from the dataset restricted to the
// pseudonymised quasi-identifiers read in that state.
//
// Following the paper, the risk only exists if the actor has access rights to
// f_anon but not to f itself; AnalyzeLTS verifies this against the model's
// access-control policy and returns an error otherwise.
func AnalyzeLTS(p *core.PrivacyLTS, opts Options) (*Annotation, error) {
	return AnalyzeLTSContext(context.Background(), p, opts)
}

// AnalyzeLTSContext is AnalyzeLTS with cancellation: ctx is polled between
// at-risk states and threaded into every dataset evaluation, so a cancelled
// context aborts the annotation promptly with ctx.Err().
func AnalyzeLTSContext(ctx context.Context, p *core.PrivacyLTS, opts Options) (*Annotation, error) {
	if p == nil {
		return nil, errors.New("pseudorisk: privacy LTS must not be nil")
	}
	if strings.TrimSpace(opts.Actor) == "" {
		return nil, errors.New("pseudorisk: actor must not be empty")
	}
	if !p.Vocab.HasActor(opts.Actor) {
		return nil, fmt.Errorf("pseudorisk: actor %q is not part of the model", opts.Actor)
	}
	// The evaluator's scenario cache is what keeps this pass cheap on large
	// models: distinct LTS states frequently share the same fieldsread set,
	// and each distinct set is scored against the dataset only once.
	evaluator, err := NewEvaluatorWithOptions(opts.Table, opts.Policy, EvaluatorOptions{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	target := opts.Policy.TargetField
	targetAnon := schema.AnonName(target)
	if !p.Vocab.HasField(targetAnon) {
		return nil, fmt.Errorf("pseudorisk: model has no pseudonymised field %q for target %q", targetAnon, target)
	}
	if err := checkAccessRights(p, opts.Actor, target, targetAnon); err != nil {
		return nil, err
	}

	columnOf := func(field string) string {
		if opts.FieldColumns != nil {
			if col, ok := opts.FieldColumns[field]; ok {
				return col
			}
		}
		return schema.BaseName(field)
	}

	annotation := &Annotation{LTS: p, Actor: opts.Actor, Policy: opts.Policy}
	reachable, err := p.Graph.Reachable()
	if err != nil {
		return nil, err
	}
	for _, id := range p.Graph.StateIDs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !reachable[id] {
			continue
		}
		vec, ok := p.Vector(id)
		if !ok || !vec.Has(opts.Actor, targetAnon) {
			continue
		}
		// fieldsread: the pseudonymised fields (other than the target's) the
		// actor has accessed in this state, mapped to dataset columns.
		var readAnon []string
		var visibleColumns []string
		for _, field := range p.Vocab.Fields() {
			if !schema.IsAnonName(field) || field == targetAnon {
				continue
			}
			if !vec.Has(opts.Actor, field) {
				continue
			}
			readAnon = append(readAnon, field)
			visibleColumns = append(visibleColumns, columnOf(field))
		}
		sort.Strings(readAnon)
		result, err := evaluator.EvaluateContext(ctx, visibleColumns)
		if err != nil {
			return nil, err
		}
		annotation.RiskTransitions = append(annotation.RiskTransitions, RiskTransition{
			From:           id,
			Actor:          opts.Actor,
			TargetField:    target,
			ReadAnonFields: readAnon,
			Result:         result,
			Violates:       result.Violations > 0,
		})
	}
	sort.Slice(annotation.RiskTransitions, func(i, j int) bool {
		return annotation.RiskTransitions[i].From < annotation.RiskTransitions[j].From
	})
	return annotation, nil
}

// checkAccessRights verifies the precondition of Section III-B: the actor
// holds read rights on the pseudonymised field but not on the original.
func checkAccessRights(p *core.PrivacyLTS, actor, target, targetAnon string) error {
	policy := p.Model.Policy
	if policy == nil {
		return errors.New("pseudorisk: model has no access-control policy; cannot establish that the actor lacks access to the original field")
	}
	var hasAnon bool
	var hasOriginal bool
	for _, store := range p.Model.Datastores {
		// Only consult stores whose schema actually declares the field:
		// wildcard grants on an unrelated store must not count as access.
		if store.Schema.Contains(targetAnon) &&
			policy.Allows(actor, store.ID, targetAnon, accesscontrol.PermissionRead) {
			hasAnon = true
		}
		if store.Schema.Contains(target) &&
			policy.Allows(actor, store.ID, target, accesscontrol.PermissionRead) {
			hasOriginal = true
		}
	}
	if !hasAnon {
		return fmt.Errorf("pseudorisk: actor %q has no read access to %q in any datastore; no pseudonymisation risk to analyse", actor, targetAnon)
	}
	if hasOriginal {
		return fmt.Errorf("pseudorisk: actor %q may read the original field %q directly; the value risk is subsumed by the disclosure risk analysis", actor, target)
	}
	return nil
}

// Violations returns the risk transitions that violate the policy.
func (a *Annotation) Violations() []RiskTransition {
	var out []RiskTransition
	for _, rt := range a.RiskTransitions {
		if rt.Violates {
			out = append(out, rt)
		}
	}
	return out
}

// MaxViolations returns the largest violation count across risk transitions.
func (a *Annotation) MaxViolations() int {
	max := 0
	for _, rt := range a.RiskTransitions {
		if rt.Result.Violations > max {
			max = rt.Result.Violations
		}
	}
	return max
}

// ViolationCounts returns the violation count of every risk transition in
// state order — for the case-study model this is the paper's "0, 2 and 4"
// sequence of Fig. 4.
func (a *Annotation) ViolationCounts() []int {
	out := make([]int, len(a.RiskTransitions))
	for i, rt := range a.RiskTransitions {
		out[i] = rt.Result.Violations
	}
	return out
}

// CheckThreshold applies the design-time gate to every risk transition.
func (a *Annotation) CheckThreshold(maxViolationFraction float64) error {
	results := make([]ScenarioResult, len(a.RiskTransitions))
	for i, rt := range a.RiskTransitions {
		results[i] = rt.Result
	}
	return CheckThreshold(results, maxViolationFraction)
}

// DOT renders the privacy LTS together with the risk transitions as dotted
// edges to synthetic risk nodes, reproducing the visual conventions of the
// paper's Fig. 4 (dotted lines indicate potential policy violations).
func (a *Annotation) DOT(name string) string {
	if name == "" {
		name = "pseudonymisation_risk"
	}
	base := a.LTS.DOT(core.DOTOptions{Name: name})
	var b strings.Builder
	// Insert the risk nodes and edges just before the closing brace of the
	// base document so the output remains a single valid DOT graph.
	closing := strings.LastIndex(base, "}")
	if closing < 0 {
		closing = len(base)
	}
	b.WriteString(base[:closing])
	for i, rt := range a.RiskTransitions {
		nodeID := fmt.Sprintf("risk%d", i)
		label := fmt.Sprintf("value risk: %s\ngiven [%s]\nviolations: %d/%d",
			rt.TargetField, strings.Join(rt.ReadAnonFields, ", "), rt.Result.Violations, len(rt.Result.Risks))
		colour := "gray40"
		if rt.Violates {
			colour = "red3"
		}
		fmt.Fprintf(&b, "  %s [label=%q, shape=\"note\", color=%q, fontcolor=%q];\n", nodeID, label, colour, colour)
		fmt.Fprintf(&b, "  %s -> %s [style=\"dotted\", color=%q, fontcolor=%q, label=\"%d violations\"];\n",
			string(rt.From), nodeID, colour, colour, rt.Result.Violations)
	}
	b.WriteString(base[closing:])
	return b.String()
}
