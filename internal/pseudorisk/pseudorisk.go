// Package pseudorisk implements the paper's pseudonymisation (value) risk
// analysis (Section III-B) and its integration with the generated privacy
// LTS.
//
// The risk being modelled: an actor who may only access the pseudonymised
// form of a sensitive field f can still, with the help of the
// quasi-identifying fields they have already read, pin the true value of f
// for an individual with high confidence — k-anonymisation prevents
// re-identification of records but not of values. For every state of the LTS
// in which the actor has accessed f_anon, a "risk transition" is produced
// whose score is computed from the dataset: the records are divided into
// sets that look identical on the fields already read, and
// risk(r, f) = frequency(f) / size(s) is the marginal probability of the
// record's true value within its set.
//
// Violations are counted against a Policy such as "the researcher must not
// be able to predict an individual's weight to within 5 kg with at least
// 90 % confidence" (case study IV-B, Table I and Fig. 4).
package pseudorisk

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"privascope/internal/anonymize"
)

// Policy is the violation policy the analysis checks value risks against.
type Policy struct {
	// TargetField is the sensitive field f whose value must not be
	// inferable, e.g. "weight".
	TargetField string `json:"target_field"`
	// Closeness is the range within which a prediction counts as correct
	// (5 kg in the paper's example).
	Closeness float64 `json:"closeness"`
	// Confidence is the probability threshold at or above which a record
	// counts as violated (0.9 in the paper's example).
	Confidence float64 `json:"confidence"`
	// Description documents the policy for reports.
	Description string `json:"description,omitempty"`
}

// Validate checks the policy's fields.
func (p Policy) Validate() error {
	if strings.TrimSpace(p.TargetField) == "" {
		return errors.New("pseudorisk: policy target field must not be empty")
	}
	if p.Closeness < 0 {
		return errors.New("pseudorisk: policy closeness must not be negative")
	}
	if p.Confidence <= 0 || p.Confidence > 1 {
		return errors.New("pseudorisk: policy confidence must be in (0, 1]")
	}
	return nil
}

// ScenarioResult is the outcome of evaluating the policy for one set of
// visible (already read) fields — one column group of the paper's Table I.
type ScenarioResult struct {
	// VisibleFields are the dataset columns the adversary can see, sorted.
	VisibleFields []string
	// Risks holds the per-record value risks.
	Risks []anonymize.ValueRisk
	// Violations is the number of records whose risk meets the policy's
	// confidence threshold.
	Violations int
	// ViolationFraction is Violations divided by the number of records.
	ViolationFraction float64
	// MaxRisk is the highest per-record probability.
	MaxRisk float64
}

// Fractions returns the per-record risks as exact fractions, in row order —
// the entries of Table I.
func (s ScenarioResult) Fractions() []anonymize.Fraction {
	out := make([]anonymize.Fraction, len(s.Risks))
	for i, r := range s.Risks {
		out[i] = r.Fraction()
	}
	return out
}

// Key returns a canonical identifier for the visible-field set.
func (s ScenarioResult) Key() string { return strings.Join(s.VisibleFields, "+") }

// Evaluator computes scenario results for a fixed dataset and policy.
type Evaluator struct {
	table  *anonymize.Table
	policy Policy
}

// NewEvaluator builds an evaluator after validating the policy against the
// dataset.
func NewEvaluator(table *anonymize.Table, policy Policy) (*Evaluator, error) {
	if table == nil {
		return nil, errors.New("pseudorisk: table must not be nil")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if _, ok := table.ColumnIndex(policy.TargetField); !ok {
		return nil, fmt.Errorf("pseudorisk: dataset has no column %q for the policy target", policy.TargetField)
	}
	return &Evaluator{table: table, policy: policy}, nil
}

// Table returns the dataset the evaluator works on.
func (e *Evaluator) Table() *anonymize.Table { return e.table }

// Policy returns the evaluator's policy.
func (e *Evaluator) Policy() Policy { return e.policy }

// Evaluate computes the scenario result for the given visible columns.
// Columns that do not exist in the dataset are ignored (they cannot help the
// adversary), and the target column is never treated as a visible
// quasi-identifier.
func (e *Evaluator) Evaluate(visibleFields []string) (ScenarioResult, error) {
	var visible []string
	for _, f := range visibleFields {
		if f == e.policy.TargetField {
			continue
		}
		if _, ok := e.table.ColumnIndex(f); ok {
			visible = append(visible, f)
		}
	}
	sort.Strings(visible)
	risks, err := anonymize.ValueRisks(e.table, anonymize.ValueRiskOptions{
		VisibleColumns: visible,
		TargetColumn:   e.policy.TargetField,
		Closeness:      e.policy.Closeness,
	})
	if err != nil {
		return ScenarioResult{}, err
	}
	result := ScenarioResult{
		VisibleFields: visible,
		Risks:         risks,
		Violations:    anonymize.CountViolations(risks, e.policy.Confidence),
		MaxRisk:       anonymize.MaxRisk(risks),
	}
	if n := e.table.NumRows(); n > 0 {
		result.ViolationFraction = float64(result.Violations) / float64(n)
	}
	return result, nil
}

// EvaluateProgression evaluates the policy for a sequence of visible-field
// sets — typically increasing, as in Table I where the researcher first sees
// height, then age, then both.
func (e *Evaluator) EvaluateProgression(fieldSets [][]string) ([]ScenarioResult, error) {
	out := make([]ScenarioResult, 0, len(fieldSets))
	for _, fields := range fieldSets {
		r, err := e.Evaluate(fields)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ErrThresholdExceeded is returned by CheckThreshold when a scenario's
// violation fraction exceeds the configured maximum. "At the design phase, a
// system designer could declare that a number of violations above 50% is
// unacceptable. The system would now throw an error if the above data was
// used."
var ErrThresholdExceeded = errors.New("pseudorisk: violation threshold exceeded")

// CheckThreshold returns an error wrapping ErrThresholdExceeded when any of
// the scenario results has a violation fraction strictly greater than
// maxViolationFraction.
func CheckThreshold(results []ScenarioResult, maxViolationFraction float64) error {
	var offending []string
	for _, r := range results {
		if r.ViolationFraction > maxViolationFraction {
			offending = append(offending, fmt.Sprintf("%s: %d violations (%.0f%%)",
				scenarioName(r), r.Violations, r.ViolationFraction*100))
		}
	}
	if len(offending) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s (limit %.0f%%); choose another pseudonymisation (e.g. larger k or l-diversity)",
		ErrThresholdExceeded, strings.Join(offending, "; "), maxViolationFraction*100)
}

func scenarioName(r ScenarioResult) string {
	if len(r.VisibleFields) == 0 {
		return "no visible fields"
	}
	return strings.Join(r.VisibleFields, "+")
}
