// Package pseudorisk implements the paper's pseudonymisation (value) risk
// analysis (Section III-B) and its integration with the generated privacy
// LTS.
//
// The risk being modelled: an actor who may only access the pseudonymised
// form of a sensitive field f can still, with the help of the
// quasi-identifying fields they have already read, pin the true value of f
// for an individual with high confidence — k-anonymisation prevents
// re-identification of records but not of values. For every state of the LTS
// in which the actor has accessed f_anon, a "risk transition" is produced
// whose score is computed from the dataset: the records are divided into
// sets that look identical on the fields already read, and
// risk(r, f) = frequency(f) / size(s) is the marginal probability of the
// record's true value within its set.
//
// Violations are counted against a Policy such as "the researcher must not
// be able to predict an individual's weight to within 5 kg with at least
// 90 % confidence" (case study IV-B, Table I and Fig. 4).
package pseudorisk

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"privascope/internal/anonymize"
	"privascope/internal/flight"
)

// Policy is the violation policy the analysis checks value risks against.
type Policy struct {
	// TargetField is the sensitive field f whose value must not be
	// inferable, e.g. "weight".
	TargetField string `json:"target_field"`
	// Closeness is the range within which a prediction counts as correct
	// (5 kg in the paper's example).
	Closeness float64 `json:"closeness"`
	// Confidence is the probability threshold at or above which a record
	// counts as violated (0.9 in the paper's example).
	Confidence float64 `json:"confidence"`
	// Description documents the policy for reports.
	Description string `json:"description,omitempty"`
}

// Validate checks the policy's fields.
func (p Policy) Validate() error {
	if strings.TrimSpace(p.TargetField) == "" {
		return errors.New("pseudorisk: policy target field must not be empty")
	}
	if p.Closeness < 0 {
		return errors.New("pseudorisk: policy closeness must not be negative")
	}
	if p.Confidence <= 0 || p.Confidence > 1 {
		return errors.New("pseudorisk: policy confidence must be in (0, 1]")
	}
	return nil
}

// ScenarioResult is the outcome of evaluating the policy for one set of
// visible (already read) fields — one column group of the paper's Table I.
type ScenarioResult struct {
	// VisibleFields are the dataset columns the adversary can see, sorted.
	VisibleFields []string
	// Risks holds the per-record value risks.
	Risks []anonymize.ValueRisk
	// Violations is the number of records whose risk meets the policy's
	// confidence threshold.
	Violations int
	// ViolationFraction is Violations divided by the number of records.
	ViolationFraction float64
	// MaxRisk is the highest per-record probability.
	MaxRisk float64
}

// Fractions returns the per-record risks as exact fractions, in row order —
// the entries of Table I.
func (s ScenarioResult) Fractions() []anonymize.Fraction {
	out := make([]anonymize.Fraction, len(s.Risks))
	for i, r := range s.Risks {
		out[i] = r.Fraction()
	}
	return out
}

// Key returns a canonical identifier for the visible-field set.
func (s ScenarioResult) Key() string { return strings.Join(s.VisibleFields, "+") }

// Evaluator computes scenario results for a fixed dataset and policy.
//
// It is built for datasets far larger than the paper's six-row example: the
// equivalence classes of each visible-field set are computed once (through a
// shared anonymize.ClassIndex, with worker-pool class building) and every
// scenario's full result is cached by its canonical visible-field key, so
// re-evaluating the same field set — as the LTS annotation does for every
// at-risk state with the same fieldsread — is a map lookup. An Evaluator is
// safe for concurrent use; cached results (including their Risks slices) are
// shared between callers and must be treated as read-only. The scenario
// cache is single-flighted with context support: concurrent evaluations of
// the same field set share one computation, and a computation aborted by
// cancellation is forgotten rather than cached.
type Evaluator struct {
	table   *anonymize.Table
	policy  Policy
	workers int
	index   *anonymize.ClassIndex

	results flight.Group[string, ScenarioResult]
}

// EvaluatorOptions tunes an Evaluator beyond the defaults.
type EvaluatorOptions struct {
	// Workers bounds the goroutines used for class building, record scoring
	// and scenario fan-out; zero or negative selects runtime.GOMAXPROCS(0).
	// Results are identical for any worker count.
	Workers int
	// Index, when set, supplies the shared equivalence-class cache; it must
	// index the evaluator's table. Leave nil to let the evaluator build its
	// own. Sharing one index lets other analyses of the same dataset (such
	// as re-identification risk) reuse the partitions.
	Index *anonymize.ClassIndex
}

// NewEvaluator builds an evaluator after validating the policy against the
// dataset, with default options.
func NewEvaluator(table *anonymize.Table, policy Policy) (*Evaluator, error) {
	return NewEvaluatorWithOptions(table, policy, EvaluatorOptions{})
}

// NewEvaluatorWithOptions is NewEvaluator with explicit options.
func NewEvaluatorWithOptions(table *anonymize.Table, policy Policy, opts EvaluatorOptions) (*Evaluator, error) {
	if table == nil {
		return nil, errors.New("pseudorisk: table must not be nil")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if _, ok := table.ColumnIndex(policy.TargetField); !ok {
		return nil, fmt.Errorf("pseudorisk: dataset has no column %q for the policy target", policy.TargetField)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	index := opts.Index
	if index == nil {
		index = anonymize.NewClassIndex(table, workers)
	} else if index.Table() != table {
		return nil, errors.New("pseudorisk: class index was built for a different table")
	}
	return &Evaluator{
		table:   table,
		policy:  policy,
		workers: workers,
		index:   index,
	}, nil
}

// Table returns the dataset the evaluator works on.
func (e *Evaluator) Table() *anonymize.Table { return e.table }

// Policy returns the evaluator's policy.
func (e *Evaluator) Policy() Policy { return e.policy }

// Index returns the evaluator's equivalence-class cache, for sharing with
// other analyses of the same dataset.
func (e *Evaluator) Index() *anonymize.ClassIndex { return e.index }

// Evaluate computes the scenario result for the given visible columns.
// Columns that do not exist in the dataset are ignored (they cannot help the
// adversary), and the target column is never treated as a visible
// quasi-identifier. Each distinct visible-field set is evaluated at most
// once per evaluator.
func (e *Evaluator) Evaluate(visibleFields []string) (ScenarioResult, error) {
	return e.EvaluateContext(context.Background(), visibleFields)
}

// EvaluateContext is Evaluate with cancellation: the underlying class build
// and record scoring poll ctx at chunk boundaries, a caller waiting on a
// concurrent evaluation of the same field set returns its own ctx.Err() when
// ctx is done, and a cancelled evaluation is not cached.
func (e *Evaluator) EvaluateContext(ctx context.Context, visibleFields []string) (ScenarioResult, error) {
	var visible []string
	for _, f := range visibleFields {
		if f == e.policy.TargetField {
			continue
		}
		if _, ok := e.table.ColumnIndex(f); ok {
			visible = append(visible, f)
		}
	}
	sort.Strings(visible)

	key := strings.Join(visible, "\x00")
	return e.results.Do(ctx, key, func(ctx context.Context) (ScenarioResult, error) {
		return e.evaluate(ctx, visible)
	})
}

// evaluate scores one canonicalised visible-field set.
func (e *Evaluator) evaluate(ctx context.Context, visible []string) (ScenarioResult, error) {
	risks, err := anonymize.ValueRisksContext(ctx, e.table, anonymize.ValueRiskOptions{
		VisibleColumns: visible,
		TargetColumn:   e.policy.TargetField,
		Closeness:      e.policy.Closeness,
		Workers:        e.workers,
		Index:          e.index,
	})
	if err != nil {
		return ScenarioResult{}, err
	}
	result := ScenarioResult{
		VisibleFields: visible,
		Risks:         risks,
		Violations:    anonymize.CountViolations(risks, e.policy.Confidence),
		MaxRisk:       anonymize.MaxRisk(risks),
	}
	if n := e.table.NumRows(); n > 0 {
		result.ViolationFraction = float64(result.Violations) / float64(n)
	}
	return result, nil
}

// EvaluateProgression evaluates the policy for a sequence of visible-field
// sets — typically increasing, as in Table I where the researcher first sees
// height, then age, then both. Scenarios are evaluated concurrently on the
// evaluator's worker pool; results come back in input order and are
// identical for any worker count, and the first failing scenario (by input
// position) determines the returned error.
func (e *Evaluator) EvaluateProgression(fieldSets [][]string) ([]ScenarioResult, error) {
	return e.EvaluateProgressionContext(context.Background(), fieldSets)
}

// EvaluateProgressionContext is EvaluateProgression with cancellation: the
// scenario fan-out workers poll ctx between scenarios (and each scenario's
// class build and scoring poll it at chunk boundaries), the pool is joined
// before returning, and a cancelled context yields ctx.Err().
func (e *Evaluator) EvaluateProgressionContext(ctx context.Context, fieldSets [][]string) ([]ScenarioResult, error) {
	out := make([]ScenarioResult, len(fieldSets))
	errs := make([]error, len(fieldSets))
	workers := e.workers
	if workers > len(fieldSets) {
		workers = len(fieldSets)
	}
	if workers <= 1 {
		for i, fields := range fieldSets {
			r, err := e.EvaluateContext(ctx, fields)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fieldSets) || ctx.Err() != nil {
					return
				}
				out[i], errs[i] = e.EvaluateContext(ctx, fieldSets[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ErrThresholdExceeded is returned by CheckThreshold when a scenario's
// violation fraction exceeds the configured maximum. "At the design phase, a
// system designer could declare that a number of violations above 50% is
// unacceptable. The system would now throw an error if the above data was
// used."
var ErrThresholdExceeded = errors.New("pseudorisk: violation threshold exceeded")

// CheckThreshold returns an error wrapping ErrThresholdExceeded when any of
// the scenario results has a violation fraction strictly greater than
// maxViolationFraction.
func CheckThreshold(results []ScenarioResult, maxViolationFraction float64) error {
	var offending []string
	for _, r := range results {
		if r.ViolationFraction > maxViolationFraction {
			offending = append(offending, fmt.Sprintf("%s: %d violations (%.0f%%)",
				scenarioName(r), r.Violations, r.ViolationFraction*100))
		}
	}
	if len(offending) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s (limit %.0f%%); choose another pseudonymisation (e.g. larger k or l-diversity)",
		ErrThresholdExceeded, strings.Join(offending, "; "), maxViolationFraction*100)
}

func scenarioName(r ScenarioResult) string {
	if len(r.VisibleFields) == 0 {
		return "no visible fields"
	}
	return strings.Join(r.VisibleFields, "+")
}
