package dataflow

import (
	"fmt"

	"privascope/internal/accesscontrol"
	"privascope/internal/schema"
)

// Builder assembles a Model incrementally with a fluent API. Errors are
// accumulated and reported by Build, so call sites stay readable:
//
//	b := dataflow.NewBuilder("surgery", dataflow.Actor{ID: "patient", Name: "Patient"})
//	b.AddActor(dataflow.Actor{ID: "doctor", Name: "Doctor"})
//	b.AddDatastore(ehr)
//	b.AddService(dataflow.Service{ID: "medical", Name: "Medical Service"})
//	b.AddFlow(dataflow.Flow{...})
//	model, err := b.Build()
type Builder struct {
	model Model
	errs  []error
}

// NewBuilder creates a builder for a model with the given name and data
// subject.
func NewBuilder(name string, user Actor) *Builder {
	return &Builder{model: Model{Name: name, User: user}}
}

// AddActor adds an actor to the model.
func (b *Builder) AddActor(a Actor) *Builder {
	b.model.Actors = append(b.model.Actors, a)
	return b
}

// AddActors adds several actors at once.
func (b *Builder) AddActors(actors ...Actor) *Builder {
	b.model.Actors = append(b.model.Actors, actors...)
	return b
}

// AddDatastore adds a datastore to the model.
func (b *Builder) AddDatastore(d schema.Datastore) *Builder {
	b.model.Datastores = append(b.model.Datastores, d)
	return b
}

// AddService adds a service to the model.
func (b *Builder) AddService(s Service) *Builder {
	b.model.Services = append(b.model.Services, s)
	return b
}

// AddFlow adds a flow. The order within the service defaults to one more than
// the highest order already present for that service when Order is zero.
func (b *Builder) AddFlow(f Flow) *Builder {
	if f.Order == 0 {
		max := 0
		for _, existing := range b.model.Flows {
			if existing.Service == f.Service && existing.Order > max {
				max = existing.Order
			}
		}
		f.Order = max + 1
	}
	b.model.Flows = append(b.model.Flows, f)
	return b
}

// Flow is a convenience wrapper around AddFlow for the common case.
func (b *Builder) Flow(service, from, to string, fields []string, purpose string) *Builder {
	return b.AddFlow(Flow{Service: service, From: from, To: to, Fields: fields, Purpose: purpose})
}

// AuthoredFlow adds a flow where the source actor authors some of the fields.
func (b *Builder) AuthoredFlow(service, from, to string, fields, authored []string, purpose string) *Builder {
	return b.AddFlow(Flow{Service: service, From: from, To: to, Fields: fields, Authored: authored, Purpose: purpose})
}

// WithPolicy attaches the access-control policy.
func (b *Builder) WithPolicy(p accesscontrol.Policy) *Builder {
	b.model.Policy = p
	return b
}

// Build validates and returns the assembled model.
func (b *Builder) Build() (*Model, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("dataflow: builder has %d errors, first: %w", len(b.errs), b.errs[0])
	}
	m := b.model
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// MustBuild is like Build but panics on error; intended for fixtures.
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
