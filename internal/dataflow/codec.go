package dataflow

import (
	"encoding/json"
	"fmt"
	"os"

	"privascope/internal/accesscontrol"
)

// document is the on-disk JSON form of a model together with its ACL policy.
// RBAC policies are not serialised; systems using RBAC attach the policy
// programmatically.
type document struct {
	Model
	ACL []grantJSON `json:"acl,omitempty"`
}

// grantJSON is the JSON form of an access-control grant; permissions are
// written as their lower-case names for readability.
type grantJSON struct {
	Actor       string   `json:"actor"`
	Datastore   string   `json:"datastore"`
	Fields      []string `json:"fields"`
	Permissions []string `json:"permissions"`
	Reason      string   `json:"reason,omitempty"`
}

// Marshal serialises the model (and its ACL policy, if the attached policy is
// an *accesscontrol.ACL) to indented JSON.
func Marshal(m *Model) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("dataflow: cannot marshal nil model")
	}
	doc := document{Model: *m}
	if acl, ok := m.Policy.(*accesscontrol.ACL); ok && acl != nil {
		for _, g := range acl.Grants() {
			perms := make([]string, len(g.Permissions))
			for i, p := range g.Permissions {
				perms[i] = p.String()
			}
			doc.ACL = append(doc.ACL, grantJSON{
				Actor:       g.Actor,
				Datastore:   g.Datastore,
				Fields:      g.Fields,
				Permissions: perms,
				Reason:      g.Reason,
			})
		}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Unmarshal parses a model document produced by Marshal and validates it.
// If the document carries an ACL section, the resulting model's Policy is an
// *accesscontrol.ACL built from it.
func Unmarshal(data []byte) (*Model, error) {
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("dataflow: parsing model document: %w", err)
	}
	m := doc.Model
	if len(doc.ACL) > 0 {
		acl := &accesscontrol.ACL{}
		for i, gj := range doc.ACL {
			perms := make([]accesscontrol.Permission, 0, len(gj.Permissions))
			for _, ps := range gj.Permissions {
				p, err := accesscontrol.ParsePermission(ps)
				if err != nil {
					return nil, fmt.Errorf("dataflow: acl entry %d: %w", i, err)
				}
				perms = append(perms, p)
			}
			if err := acl.Add(accesscontrol.Grant{
				Actor:       gj.Actor,
				Datastore:   gj.Datastore,
				Fields:      gj.Fields,
				Permissions: perms,
				Reason:      gj.Reason,
			}); err != nil {
				return nil, fmt.Errorf("dataflow: acl entry %d: %w", i, err)
			}
		}
		m.Policy = acl
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Save writes the model document to a file.
func Save(m *Model, path string) error {
	data, err := Marshal(m)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("dataflow: writing model to %s: %w", path, err)
	}
	return nil
}

// Load reads and validates a model document from a file.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataflow: reading model from %s: %w", path, err)
	}
	return Unmarshal(data)
}
