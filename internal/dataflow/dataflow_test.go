package dataflow

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/schema"
)

// testModel builds a small two-service clinic model used across the tests in
// this package. It is intentionally smaller than the full case study in
// internal/casestudy.
func testModel(t *testing.T) *Model {
	t.Helper()
	ehrSchema := schema.MustSchema("ehr",
		schema.Field{Name: "name", Category: schema.CategoryIdentifier},
		schema.Field{Name: "diagnosis", Category: schema.CategorySensitive},
	)
	anonSchema := schema.MustSchema("ehr_anon",
		schema.Field{Name: "diagnosis_anon", Category: schema.CategorySensitive, Pseudonymised: true},
	)
	acl := accesscontrol.MustACL(
		accesscontrol.Grant{Actor: "doctor", Datastore: "ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}},
		accesscontrol.Grant{Actor: "researcher", Datastore: "anon_ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}},
		accesscontrol.Grant{Actor: "admin", Datastore: "anon_ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionWrite}},
		accesscontrol.Grant{Actor: "admin", Datastore: "ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}, Reason: "maintenance"},
	)

	b := NewBuilder("clinic", Actor{ID: "patient", Name: "Patient"})
	b.AddActors(
		Actor{ID: "doctor", Name: "Doctor"},
		Actor{ID: "admin", Name: "Administrator"},
		Actor{ID: "researcher", Name: "Researcher"},
	)
	b.AddDatastore(schema.Datastore{ID: "ehr", Name: "EHR", Schema: ehrSchema})
	b.AddDatastore(schema.Datastore{ID: "anon_ehr", Name: "Anonymised EHR", Schema: anonSchema, Anonymised: true})
	b.AddService(Service{ID: "care", Name: "Care Service"})
	b.AddService(Service{ID: "research", Name: "Research Service"})
	b.Flow("care", "patient", "doctor", []string{"name"}, "registration")
	b.AuthoredFlow("care", "doctor", "ehr", []string{"name", "diagnosis"}, []string{"diagnosis"}, "record consultation")
	b.Flow("research", "ehr", "admin", []string{"diagnosis"}, "prepare research data")
	b.Flow("research", "admin", "anon_ehr", []string{"diagnosis"}, "anonymise")
	b.Flow("research", "anon_ehr", "researcher", []string{"diagnosis_anon"}, "analysis")
	b.WithPolicy(acl)

	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestNodeKindString(t *testing.T) {
	if NodeUser.String() != "user" || NodeActor.String() != "actor" || NodeDatastore.String() != "datastore" {
		t.Error("NodeKind.String() wrong for defined kinds")
	}
	if got := NodeKind(9).String(); got != "nodekind(9)" {
		t.Errorf("NodeKind(9).String() = %q", got)
	}
}

func TestBuilderProducesValidModel(t *testing.T) {
	m := testModel(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(m.Flows); got != 5 {
		t.Errorf("len(Flows) = %d, want 5", got)
	}
	// Orders are auto-assigned per service.
	careFlows := m.ServiceFlows("care")
	if careFlows[0].Order != 1 || careFlows[1].Order != 2 {
		t.Errorf("care flow orders = %d, %d", careFlows[0].Order, careFlows[1].Order)
	}
	researchFlows := m.ServiceFlows("research")
	if len(researchFlows) != 3 || researchFlows[2].Order != 3 {
		t.Errorf("research flows = %+v", researchFlows)
	}
}

func TestModelLookups(t *testing.T) {
	m := testModel(t)
	if _, ok := m.Actor("doctor"); !ok {
		t.Error("Actor(doctor) not found")
	}
	if _, ok := m.Actor("patient"); !ok {
		t.Error("Actor(patient) should resolve the user")
	}
	if _, ok := m.Actor("ghost"); ok {
		t.Error("Actor(ghost) should not resolve")
	}
	if _, ok := m.Datastore("ehr"); !ok {
		t.Error("Datastore(ehr) not found")
	}
	if _, ok := m.Service("care"); !ok {
		t.Error("Service(care) not found")
	}
	if k, ok := m.NodeKindOf("patient"); !ok || k != NodeUser {
		t.Errorf("NodeKindOf(patient) = %v, %v", k, ok)
	}
	if k, ok := m.NodeKindOf("anon_ehr"); !ok || k != NodeDatastore {
		t.Errorf("NodeKindOf(anon_ehr) = %v, %v", k, ok)
	}
	if _, ok := m.NodeKindOf("ghost"); ok {
		t.Error("NodeKindOf(ghost) should fail")
	}
}

func TestModelIDsSorted(t *testing.T) {
	m := testModel(t)
	if got := m.ActorIDs(); !reflect.DeepEqual(got, []string{"admin", "doctor", "researcher"}) {
		t.Errorf("ActorIDs() = %v", got)
	}
	if got := m.DatastoreIDs(); !reflect.DeepEqual(got, []string{"anon_ehr", "ehr"}) {
		t.Errorf("DatastoreIDs() = %v", got)
	}
	if got := m.ServiceIDs(); !reflect.DeepEqual(got, []string{"care", "research"}) {
		t.Errorf("ServiceIDs() = %v", got)
	}
}

func TestFieldUniverse(t *testing.T) {
	m := testModel(t)
	got := m.FieldUniverse()
	want := []string{"diagnosis", "diagnosis_anon", "name"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FieldUniverse() = %v, want %v", got, want)
	}
}

func TestServiceActors(t *testing.T) {
	m := testModel(t)
	if got := m.ServiceActors("care"); !reflect.DeepEqual(got, []string{"doctor"}) {
		t.Errorf("ServiceActors(care) = %v", got)
	}
	if got := m.ServiceActors("research"); !reflect.DeepEqual(got, []string{"admin", "researcher"}) {
		t.Errorf("ServiceActors(research) = %v", got)
	}
	if got := m.ServiceActors("care", "research"); !reflect.DeepEqual(got, []string{"admin", "doctor", "researcher"}) {
		t.Errorf("ServiceActors(care, research) = %v", got)
	}
	if got := m.ServiceActors(); len(got) != 0 {
		t.Errorf("ServiceActors() = %v, want empty", got)
	}
}

func TestFieldSensitivity(t *testing.T) {
	m := testModel(t)
	if got := m.FieldSensitivity("diagnosis"); got != schema.CategorySensitive {
		t.Errorf("FieldSensitivity(diagnosis) = %v", got)
	}
	if got := m.FieldSensitivity("unknown_field"); got != schema.CategoryStandard {
		t.Errorf("FieldSensitivity(unknown_field) = %v", got)
	}
}

func TestStats(t *testing.T) {
	m := testModel(t)
	s := m.Stats()
	want := Stats{Actors: 3, Datastores: 2, Services: 2, Flows: 5, Fields: 3, StateVariables: 18}
	if s != want {
		t.Errorf("Stats() = %+v, want %+v", s, want)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Model { return testModel(t) }

	tests := []struct {
		name    string
		mutate  func(*Model)
		wantSub string
	}{
		{"empty name", func(m *Model) { m.Name = " " }, "name"},
		{"missing user", func(m *Model) { m.User.ID = "" }, "user"},
		{"duplicate actor id", func(m *Model) { m.Actors = append(m.Actors, Actor{ID: "doctor"}) }, "doctor"},
		{"actor id clashes with user", func(m *Model) { m.Actors = append(m.Actors, Actor{ID: "patient"}) }, "patient"},
		{"duplicate datastore id", func(m *Model) {
			m.Datastores = append(m.Datastores, schema.Datastore{ID: "ehr",
				Schema: schema.MustSchema("x", schema.Field{Name: "f", Category: schema.CategoryStandard})})
		}, "ehr"},
		{"duplicate service", func(m *Model) { m.Services = append(m.Services, Service{ID: "care"}) }, "care"},
		{"flow to unknown service", func(m *Model) { m.Flows[0].Service = "ghost" }, "service"},
		{"flow from unknown node", func(m *Model) { m.Flows[0].From = "ghost" }, "ghost"},
		{"flow to unknown node", func(m *Model) { m.Flows[0].To = "ghost" }, "ghost"},
		{"flow to the user", func(m *Model) { m.Flows[0].To = "patient" }, "data subject"},
		{"flow without fields", func(m *Model) { m.Flows[0].Fields = nil }, "no fields"},
		{"store field not in schema", func(m *Model) { m.Flows[1].Fields = []string{"name", "blood_type"} }, "blood_type"},
		{"authored not carried", func(m *Model) { m.Flows[1].Authored = []string{"appointment"} }, "authors"},
		{"authored from datastore", func(m *Model) { m.Flows[2].Authored = []string{"diagnosis"} }, "author"},
		{"duplicate order", func(m *Model) { m.Flows[1].Order = 1 }, "order"},
		{"store to store flow", func(m *Model) {
			m.Flows = append(m.Flows, Flow{Service: "care", Order: 9, From: "ehr", To: "anon_ehr", Fields: []string{"diagnosis"}})
		}, "datastores"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := base()
			tt.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestValidateAnonStoreAcceptsPlainFieldWrite(t *testing.T) {
	// Writing "diagnosis" into the anonymised store is valid because the
	// store declares "diagnosis_anon"; the flow models the anon action.
	m := testModel(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// But reading a plain field *out* of the anonymised store is invalid.
	m.Flows = append(m.Flows, Flow{Service: "research", Order: 9, From: "anon_ehr", To: "researcher",
		Fields: []string{"diagnosis"}, Purpose: "oops"})
	if err := m.Validate(); err == nil {
		t.Error("reading plain field from anonymised store should fail validation")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := testModel(t)
	data, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Name != m.Name || len(got.Flows) != len(m.Flows) || len(got.Actors) != len(m.Actors) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// The ACL policy must survive the round trip.
	if got.Policy == nil {
		t.Fatal("round-tripped model lost its policy")
	}
	if !got.Policy.Allows("admin", "ehr", "diagnosis", accesscontrol.PermissionRead) {
		t.Error("round-tripped policy lost admin read grant")
	}
	if got.Policy.Allows("researcher", "ehr", "diagnosis", accesscontrol.PermissionRead) {
		t.Error("round-tripped policy allows access it should not")
	}
}

func TestMarshalNil(t *testing.T) {
	if _, err := Marshal(nil); err == nil {
		t.Error("Marshal(nil) should fail")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte(`{not json`)); err == nil {
		t.Error("invalid JSON accepted")
	}
	// Structurally valid JSON but semantically invalid model.
	if _, err := Unmarshal([]byte(`{"name":"m","user":{"id":""}}`)); err == nil {
		t.Error("model without user accepted")
	}
	// Bad permission name in ACL.
	doc := `{"name":"m","user":{"id":"u"},"actors":[{"id":"a"}],
	  "datastores":[{"id":"d","schema":{"name":"d","fields":[{"name":"f","category":1}]}}],
	  "services":[{"id":"s"}],
	  "flows":[{"service":"s","order":1,"from":"u","to":"a","fields":["f"],"purpose":"p"}],
	  "acl":[{"actor":"a","datastore":"d","fields":["f"],"permissions":["fly"]}]}`
	if _, err := Unmarshal([]byte(doc)); err == nil {
		t.Error("ACL with unknown permission accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	m := testModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := Save(m, path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != "clinic" {
		t.Errorf("loaded model name = %q", got.Name)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load of missing file should fail")
	}
}

func TestDOT(t *testing.T) {
	m := testModel(t)
	out := m.DOT()
	for _, want := range []string{
		"digraph clinic {",
		`shape="oval"`,
		`shape="box"`,
		"patient -> doctor",
		"anon_ehr -> researcher",
		"registration",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT() missing %q", want)
		}
	}
	// Anonymised store drawn dashed.
	if !strings.Contains(out, `style="dashed"`) {
		t.Error("DOT() should draw anonymised stores dashed")
	}
}

func TestServiceDOT(t *testing.T) {
	m := testModel(t)
	out, err := m.ServiceDOT("care")
	if err != nil {
		t.Fatalf("ServiceDOT: %v", err)
	}
	if !strings.Contains(out, "patient -> doctor") {
		t.Error("ServiceDOT(care) missing care flow")
	}
	if strings.Contains(out, "researcher") {
		t.Error("ServiceDOT(care) should not include research-only nodes")
	}
	if _, err := m.ServiceDOT("ghost"); err == nil {
		t.Error("ServiceDOT(ghost) should fail")
	}
}

func TestFlowKeyAndSets(t *testing.T) {
	f := Flow{Service: "care", Order: 2, From: "doctor", To: "ehr", Fields: []string{"b", "a"}, Authored: []string{"a"}}
	if got := f.Key(); got != "care/2:doctor->ehr" {
		t.Errorf("Key() = %q", got)
	}
	if got := f.FieldSet().String(); got != "a, b" {
		t.Errorf("FieldSet() = %q", got)
	}
	if got := f.AuthoredSet().String(); got != "a" {
		t.Errorf("AuthoredSet() = %q", got)
	}
}

func TestBuilderMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on invalid model should panic")
		}
	}()
	NewBuilder("", Actor{}).MustBuild()
}
