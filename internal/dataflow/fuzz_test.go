package dataflow

import (
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/schema"
)

// fuzzSeedModel is a compact valid model document (with an ACL section) used
// to seed the decoder fuzzer; mutations of it explore the validation paths.
func fuzzSeedModel(f *testing.F) []byte {
	f.Helper()
	b := NewBuilder("fuzz-seed", Actor{ID: "patient", Name: "Patient"})
	b.AddActors(Actor{ID: "doctor", Name: "Doctor"})
	b.AddDatastore(schema.Datastore{ID: "ehr", Name: "EHR", Schema: schema.MustSchema("ehr",
		schema.Field{Name: "name", Category: schema.CategoryIdentifier},
		schema.Field{Name: "diagnosis", Category: schema.CategorySensitive},
	)})
	b.AddService(Service{ID: "care", Name: "Care"})
	b.Flow("care", "patient", "doctor", []string{"name"}, "registration")
	b.AuthoredFlow("care", "doctor", "ehr", []string{"name", "diagnosis"}, []string{"diagnosis"}, "record")
	b.WithPolicy(accesscontrol.MustACL(accesscontrol.Grant{
		Actor: "doctor", Datastore: "ehr", Fields: []string{accesscontrol.AllFields},
		Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite},
	}))
	m, err := b.Build()
	if err != nil {
		f.Fatalf("building seed model: %v", err)
	}
	data, err := Marshal(m)
	if err != nil {
		f.Fatalf("marshalling seed model: %v", err)
	}
	return data
}

// FuzzModelUnmarshal feeds arbitrary bytes through the model decoder.
// Garbage must be rejected with an error, never a panic; any document the
// decoder accepts must be a valid model that survives a Marshal/Unmarshal
// round trip with its semantic fingerprint intact — the property the
// Engine's fingerprint-keyed cache depends on.
func FuzzModelUnmarshal(f *testing.F) {
	f.Add(fuzzSeedModel(f))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","user":{"id":"u"}}`))
	f.Add([]byte(`{"name":"x","user":{"id":"u"},"acl":[{"actor":"a","datastore":"d","fields":["*"],"permissions":["read"]}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Unmarshal accepted an invalid model: %v", err)
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("re-marshalling an accepted model failed: %v", err)
		}
		again, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-parsing our own output failed: %v\noutput:\n%s", err, out)
		}
		fp1, err := Fingerprint(m)
		if err != nil {
			t.Fatalf("fingerprinting an accepted model failed: %v", err)
		}
		fp2, err := Fingerprint(again)
		if err != nil {
			t.Fatalf("fingerprinting the round-tripped model failed: %v", err)
		}
		if fp1 != fp2 {
			t.Fatalf("round trip changed the model fingerprint: %s vs %s", fp1, fp2)
		}
	})
}
