package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"privascope/internal/dot"
)

// DOT renders the model's data-flow diagrams in Graphviz DOT format,
// reproducing the visual conventions of the paper's Fig. 1: actors are ovals,
// datastores are rectangles labelled with their identifier and schema, and
// every flow arrow is labelled with its fields, purpose, and order. Each
// service is drawn as its own cluster.
func (m *Model) DOT() string {
	g := dot.NewGraph(sanitizeName(m.Name))
	g.SetGraphAttr("rankdir", "LR")
	g.SetGraphAttr("fontname", "Helvetica")
	g.SetNodeDefault("fontname", "Helvetica")
	g.SetEdgeDefault("fontname", "Helvetica")

	g.AddNode(m.User.ID, map[string]string{
		"shape": "oval", "style": "bold", "label": displayName(m.User.Name, m.User.ID),
	})
	for _, a := range m.Actors {
		g.AddNode(a.ID, map[string]string{"shape": "oval", "label": displayName(a.Name, a.ID)})
	}
	for _, d := range m.Datastores {
		label := fmt.Sprintf("%s\n[%s]", displayName(d.Name, d.ID), strings.Join(d.Schema.FieldNames(), ", "))
		attrs := map[string]string{"shape": "box", "label": label}
		if d.Anonymised {
			attrs["style"] = "dashed"
		}
		g.AddNode(d.ID, attrs)
	}

	// One cluster per service listing the participating actors/stores keeps
	// the two diagrams of Fig. 1 visually separate while sharing nodes.
	serviceIDs := m.ServiceIDs()
	for _, sid := range serviceIDs {
		flows := m.ServiceFlows(sid)
		sort.Slice(flows, func(i, j int) bool { return flows[i].Order < flows[j].Order })
		for _, f := range flows {
			label := fmt.Sprintf("%d. {%s}\n%s", f.Order, strings.Join(f.Fields, ", "), f.Purpose)
			attrs := map[string]string{"label": label}
			if len(serviceIDs) > 1 {
				attrs["color"] = serviceColor(sid, serviceIDs)
				attrs["fontcolor"] = serviceColor(sid, serviceIDs)
			}
			g.AddEdge(f.From, f.To, attrs)
		}
	}
	return g.Render()
}

// ServiceDOT renders the data-flow diagram of a single service.
func (m *Model) ServiceDOT(serviceID string) (string, error) {
	svc, ok := m.Service(serviceID)
	if !ok {
		return "", fmt.Errorf("dataflow: unknown service %q", serviceID)
	}
	g := dot.NewGraph(sanitizeName(m.Name + "_" + serviceID))
	g.SetGraphAttr("rankdir", "LR")
	g.SetGraphAttr("label", displayName(svc.Name, svc.ID))
	nodes := make(map[string]bool)
	flows := m.ServiceFlows(serviceID)
	for _, f := range flows {
		nodes[f.From] = true
		nodes[f.To] = true
	}
	addNode := func(id string) {
		kind, _ := m.NodeKindOf(id)
		switch kind {
		case NodeUser:
			g.AddNode(id, map[string]string{"shape": "oval", "style": "bold", "label": displayName(m.User.Name, id)})
		case NodeActor:
			a, _ := m.Actor(id)
			g.AddNode(id, map[string]string{"shape": "oval", "label": displayName(a.Name, id)})
		case NodeDatastore:
			d, _ := m.Datastore(id)
			label := fmt.Sprintf("%s\n[%s]", displayName(d.Name, d.ID), strings.Join(d.Schema.FieldNames(), ", "))
			attrs := map[string]string{"shape": "box", "label": label}
			if d.Anonymised {
				attrs["style"] = "dashed"
			}
			g.AddNode(id, attrs)
		}
	}
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		addNode(id)
	}
	for _, f := range flows {
		label := fmt.Sprintf("%d. {%s}\n%s", f.Order, strings.Join(f.Fields, ", "), f.Purpose)
		g.AddEdge(f.From, f.To, map[string]string{"label": label})
	}
	return g.Render(), nil
}

var serviceColors = []string{"black", "blue", "darkgreen", "red4", "purple", "orange3"}

func serviceColor(serviceID string, all []string) string {
	for i, id := range all {
		if id == serviceID {
			return serviceColors[i%len(serviceColors)]
		}
	}
	return "black"
}

func displayName(name, id string) string {
	if name != "" {
		return name
	}
	return id
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "model"
	}
	return string(out)
}
