// Package dataflow implements the paper's data-flow modelling framework
// (Section II-A): developers "specify their system in terms of a
// purpose-driven data-flow diagram and a set of access policies".
//
// A Model contains:
//
//   - the data subject (the "user" whose privacy is being modelled),
//   - the actors (individuals or role types that can identify the user's
//     personal data),
//   - the datastores (with schemas, from package schema),
//   - one or more services, each an ordered list of flows,
//   - the access-control policy (from package accesscontrol).
//
// Each flow is a directed edge between two nodes labelled with the set of
// data fields that flow, the purpose of the flow, and a numeric order —
// exactly the three labels the paper places on flow arrows. The model is the
// single input to the privacy-LTS generator in package core.
package dataflow

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"privascope/internal/accesscontrol"
	"privascope/internal/schema"
)

// NodeKind distinguishes the three node types of a data-flow diagram.
type NodeKind int

// Node kinds. The user (data subject) is drawn as an oval like other actors
// in the paper's diagrams but plays a distinguished role in the extraction
// rules (flows leaving the user are "collect" actions).
const (
	NodeUser NodeKind = iota + 1
	NodeActor
	NodeDatastore
)

var nodeKindNames = map[NodeKind]string{
	NodeUser:      "user",
	NodeActor:     "actor",
	NodeDatastore: "datastore",
}

// String returns the lower-case name of the node kind.
func (k NodeKind) String() string {
	if s, ok := nodeKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("nodekind(%d)", int(k))
}

// Actor is an individual or role type that handles personal data.
type Actor struct {
	// ID identifies the actor in flows and access-control grants.
	ID string `json:"id"`
	// Name is the human-readable name, e.g. "Receptionist".
	Name string `json:"name"`
	// Description documents the actor's function.
	Description string `json:"description,omitempty"`
}

// Flow is one directed data-flow arrow between two nodes of the diagram.
type Flow struct {
	// Service is the identifier of the service this flow belongs to.
	Service string `json:"service"`
	// Order is the numeric execution order of the flow within its service
	// (the third label on the paper's flow arrows).
	Order int `json:"order"`
	// From and To are node identifiers: the user ID, an actor ID, or a
	// datastore ID.
	From string `json:"from"`
	To   string `json:"to"`
	// Fields is the set of data fields that flow along the arrow.
	Fields []string `json:"fields"`
	// Purpose explains why the data flows (the second label on the arrow).
	Purpose string `json:"purpose"`
	// Authored lists the subset of Fields that the source actor creates
	// during this flow rather than having previously obtained (for example a
	// doctor authoring a diagnosis). Authored fields are exempt from the
	// "start node has the correct data to flow" gating rule.
	Authored []string `json:"authored,omitempty"`
	// Delete marks a flow from an actor to a datastore as a deletion: the
	// fields are removed from the store instead of being written to it
	// (the paper's "delete" action).
	Delete bool `json:"delete,omitempty"`
}

// FieldSet returns the flow's fields as a schema.FieldSet.
func (f Flow) FieldSet() schema.FieldSet { return schema.NewFieldSet(f.Fields...) }

// AuthoredSet returns the flow's authored fields as a schema.FieldSet.
func (f Flow) AuthoredSet() schema.FieldSet { return schema.NewFieldSet(f.Authored...) }

// Key returns a stable identifier for the flow used in traces and reports.
func (f Flow) Key() string {
	return fmt.Sprintf("%s/%d:%s->%s", f.Service, f.Order, f.From, f.To)
}

// Service is a named business process composed of ordered flows. Users give
// (or withhold) consent per service; consent is the basis of the
// allowed/non-allowed actor split in the risk analysis (Section III-A).
type Service struct {
	// ID identifies the service, e.g. "medical-service".
	ID string `json:"id"`
	// Name is the human-readable name, e.g. "Medical Service".
	Name string `json:"name"`
	// Purpose documents the overall purpose of the service.
	Purpose string `json:"purpose,omitempty"`
}

// Model is a complete data-flow model of a privacy-aware system.
type Model struct {
	// Name identifies the system being modelled.
	Name string `json:"name"`
	// User is the data subject whose privacy the model tracks.
	User Actor `json:"user"`
	// Actors are the individuals/roles that handle the user's data.
	Actors []Actor `json:"actors"`
	// Datastores are the stores holding personal data.
	Datastores []schema.Datastore `json:"datastores"`
	// Services are the business processes of the system.
	Services []Service `json:"services"`
	// Flows are every data-flow arrow across all services.
	Flows []Flow `json:"flows"`

	// Policy is the access-control policy of the system's datastores. It is
	// not serialised with the model; attach it programmatically or load it
	// separately (see policyJSON in codec.go for the ACL form).
	Policy accesscontrol.Policy `json:"-"`
}

// Actor returns the actor with the given ID.
func (m *Model) Actor(id string) (Actor, bool) {
	if m.User.ID == id {
		return m.User, true
	}
	for _, a := range m.Actors {
		if a.ID == id {
			return a, true
		}
	}
	return Actor{}, false
}

// Datastore returns the datastore with the given ID.
func (m *Model) Datastore(id string) (schema.Datastore, bool) {
	for _, d := range m.Datastores {
		if d.ID == id {
			return d, true
		}
	}
	return schema.Datastore{}, false
}

// Service returns the service with the given ID.
func (m *Model) Service(id string) (Service, bool) {
	for _, s := range m.Services {
		if s.ID == id {
			return s, true
		}
	}
	return Service{}, false
}

// NodeKindOf classifies a node identifier as user, actor, or datastore.
func (m *Model) NodeKindOf(id string) (NodeKind, bool) {
	if id == m.User.ID {
		return NodeUser, true
	}
	for _, a := range m.Actors {
		if a.ID == id {
			return NodeActor, true
		}
	}
	for _, d := range m.Datastores {
		if d.ID == id {
			return NodeDatastore, true
		}
	}
	return 0, false
}

// ActorIDs returns the IDs of all actors (excluding the user), sorted.
func (m *Model) ActorIDs() []string {
	out := make([]string, 0, len(m.Actors))
	for _, a := range m.Actors {
		out = append(out, a.ID)
	}
	sort.Strings(out)
	return out
}

// DatastoreIDs returns the IDs of all datastores, sorted.
func (m *Model) DatastoreIDs() []string {
	out := make([]string, 0, len(m.Datastores))
	for _, d := range m.Datastores {
		out = append(out, d.ID)
	}
	sort.Strings(out)
	return out
}

// ServiceIDs returns the IDs of all services, sorted.
func (m *Model) ServiceIDs() []string {
	out := make([]string, 0, len(m.Services))
	for _, s := range m.Services {
		out = append(out, s.ID)
	}
	sort.Strings(out)
	return out
}

// FieldUniverse returns the sorted union of every field name appearing in a
// flow or a datastore schema. This is the field dimension of the privacy
// state space.
func (m *Model) FieldUniverse() []string {
	set := make(map[string]bool)
	for _, d := range m.Datastores {
		for _, f := range d.Schema.Fields {
			set[f.Name] = true
		}
	}
	for _, fl := range m.Flows {
		for _, f := range fl.Fields {
			set[f] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// ServiceFlows returns the flows of the given service sorted by Order.
func (m *Model) ServiceFlows(serviceID string) []Flow {
	var out []Flow
	for _, f := range m.Flows {
		if f.Service == serviceID {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// ServiceActors returns the sorted IDs of the actors that participate in the
// given services' flows (as source or target, excluding the user and
// datastores). These are the "allowed actors" when a user consents to those
// services (Section III-A).
func (m *Model) ServiceActors(serviceIDs ...string) []string {
	wanted := make(map[string]bool, len(serviceIDs))
	for _, id := range serviceIDs {
		wanted[id] = true
	}
	set := make(map[string]bool)
	for _, f := range m.Flows {
		if !wanted[f.Service] {
			continue
		}
		for _, node := range []string{f.From, f.To} {
			if kind, ok := m.NodeKindOf(node); ok && kind == NodeActor {
				set[node] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// FieldSensitivity returns the schema category of the named field by looking
// it up across datastores (first match wins). Fields only present in flows
// default to CategoryStandard.
func (m *Model) FieldSensitivity(field string) schema.Category {
	for _, d := range m.Datastores {
		if f, ok := d.Schema.Field(field); ok {
			return f.Category
		}
	}
	return schema.CategoryStandard
}

// Validate checks the structural consistency of the model:
//
//   - unique, non-empty identifiers for user, actors, datastores, services;
//   - every flow references an existing service and existing endpoints;
//   - flows never connect two datastores directly (the paper's diagrams flow
//     through actors);
//   - flow fields written to or read from a datastore exist in its schema
//     (pseudonymised stores accept the anonymised form of a field);
//   - flow orders are unique within a service;
//   - authored fields are a subset of the flow's fields and only appear on
//     flows whose source is an actor.
func (m *Model) Validate() error {
	if strings.TrimSpace(m.Name) == "" {
		return errors.New("dataflow: model name must not be empty")
	}
	if strings.TrimSpace(m.User.ID) == "" {
		return errors.New("dataflow: model must declare a user (data subject)")
	}
	ids := map[string]string{m.User.ID: "user"}
	for _, a := range m.Actors {
		if strings.TrimSpace(a.ID) == "" {
			return errors.New("dataflow: actor with empty ID")
		}
		if prev, dup := ids[a.ID]; dup {
			return fmt.Errorf("dataflow: identifier %q used by both %s and actor", a.ID, prev)
		}
		ids[a.ID] = "actor"
	}
	for _, d := range m.Datastores {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("dataflow: %w", err)
		}
		if prev, dup := ids[d.ID]; dup {
			return fmt.Errorf("dataflow: identifier %q used by both %s and datastore", d.ID, prev)
		}
		ids[d.ID] = "datastore"
	}
	serviceIDs := make(map[string]bool, len(m.Services))
	for _, s := range m.Services {
		if strings.TrimSpace(s.ID) == "" {
			return errors.New("dataflow: service with empty ID")
		}
		if serviceIDs[s.ID] {
			return fmt.Errorf("dataflow: duplicate service %q", s.ID)
		}
		serviceIDs[s.ID] = true
	}

	ordersSeen := make(map[string]map[int]bool)
	for i, f := range m.Flows {
		if !serviceIDs[f.Service] {
			return fmt.Errorf("dataflow: flow %d references unknown service %q", i, f.Service)
		}
		fromKind, ok := m.NodeKindOf(f.From)
		if !ok {
			return fmt.Errorf("dataflow: flow %s references unknown source node %q", f.Key(), f.From)
		}
		toKind, ok := m.NodeKindOf(f.To)
		if !ok {
			return fmt.Errorf("dataflow: flow %s references unknown target node %q", f.Key(), f.To)
		}
		if fromKind == NodeDatastore && toKind == NodeDatastore {
			return fmt.Errorf("dataflow: flow %s connects two datastores; data must flow through an actor", f.Key())
		}
		if toKind == NodeUser {
			return fmt.Errorf("dataflow: flow %s targets the data subject; model disclosures to the user as actor reads", f.Key())
		}
		if len(f.Fields) == 0 {
			return fmt.Errorf("dataflow: flow %s carries no fields", f.Key())
		}
		if err := m.validateStoreFields(f, fromKind, toKind); err != nil {
			return err
		}
		authored := f.AuthoredSet()
		if !f.FieldSet().ContainsAll(authored) {
			return fmt.Errorf("dataflow: flow %s authors fields it does not carry", f.Key())
		}
		if !authored.IsEmpty() && fromKind == NodeDatastore {
			return fmt.Errorf("dataflow: flow %s cannot author fields from a datastore", f.Key())
		}
		if f.Delete && toKind != NodeDatastore {
			return fmt.Errorf("dataflow: delete flow %s must target a datastore", f.Key())
		}
		if f.Delete && !authored.IsEmpty() {
			return fmt.Errorf("dataflow: delete flow %s cannot author fields", f.Key())
		}
		if ordersSeen[f.Service] == nil {
			ordersSeen[f.Service] = make(map[int]bool)
		}
		if ordersSeen[f.Service][f.Order] {
			return fmt.Errorf("dataflow: service %q has two flows with order %d", f.Service, f.Order)
		}
		ordersSeen[f.Service][f.Order] = true
	}
	return nil
}

// validateStoreFields checks that fields flowing into or out of a datastore
// are declared by its schema. Writing a plain field into an anonymised store
// is allowed when the store's schema declares the field's anonymised form:
// the write is the paper's "anon" action and stores the pseudonymised value.
func (m *Model) validateStoreFields(f Flow, fromKind, toKind NodeKind) error {
	check := func(storeID string, incoming bool) error {
		d, ok := m.Datastore(storeID)
		if !ok {
			return fmt.Errorf("dataflow: flow %s references unknown datastore %q", f.Key(), storeID)
		}
		for _, field := range f.Fields {
			if d.Schema.Contains(field) {
				continue
			}
			if incoming && d.Anonymised && d.Schema.Contains(schema.AnonName(field)) {
				continue
			}
			return fmt.Errorf("dataflow: flow %s uses field %q not in schema of datastore %q",
				f.Key(), field, storeID)
		}
		return nil
	}
	if toKind == NodeDatastore {
		if err := check(f.To, true); err != nil {
			return err
		}
	}
	if fromKind == NodeDatastore {
		if err := check(f.From, false); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarises the size of a model; used by reports and scaling benches.
type Stats struct {
	Actors     int
	Datastores int
	Services   int
	Flows      int
	Fields     int
	// StateVariables is 2 * Actors * Fields, the number of Boolean state
	// variables each privacy state carries (Section II-B).
	StateVariables int
}

// Stats computes the model's size statistics.
func (m *Model) Stats() Stats {
	fields := len(m.FieldUniverse())
	return Stats{
		Actors:         len(m.Actors),
		Datastores:     len(m.Datastores),
		Services:       len(m.Services),
		Flows:          len(m.Flows),
		Fields:         fields,
		StateVariables: 2 * len(m.Actors) * fields,
	}
}
