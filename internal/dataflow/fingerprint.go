package dataflow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"

	"privascope/internal/accesscontrol"
)

// Fingerprint returns a collision-resistant canonical fingerprint of the
// model: the hex SHA-256 of the model's canonical JSON document together
// with a canonical, injective encoding of the attached access-control
// policy. Semantically different models never share a fingerprint, and two
// builds of the same model — same actors, datastores, schemas, services,
// flows (in declared order, which is semantically meaningful), grants,
// roles and assignments, each in the same declaration order — always do.
// The converse direction is deliberately conservative: declaration order of
// grants is part of the fingerprint even though it only affects explanation
// text, so two policies listing the same grants in different orders hash
// differently (a harmless extra cache entry, never a wrong share).
//
// The fingerprint is what lets a long-lived cache (privascope.Engine) key
// generated privacy models by value rather than by pointer, so two loads of
// the same model document share one generation.
//
// Policies of types other than the package's own ACL, RBAC and Composite
// cannot be canonically encoded and yield an error; callers should treat
// such models as unfingerprintable (and skip caching) rather than guess.
func Fingerprint(m *Model) (string, error) {
	if m == nil {
		return "", fmt.Errorf("dataflow: cannot fingerprint nil model")
	}
	data, err := Marshal(m)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(data)
	// Marshal already encodes ACL policies, but the policy is re-encoded
	// uniformly here so that (a) RBAC and Composite policies — which Marshal
	// omits — contribute, and (b) a nil policy is distinguishable from an
	// empty ACL.
	if err := writePolicyCanonical(h, m.Policy); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// writePolicyCanonical writes an injective encoding of the policy: every
// variable-length string is length-prefixed, and each policy type carries a
// distinct tag, so no two different policies render identically.
func writePolicyCanonical(w io.Writer, p accesscontrol.Policy) error {
	switch policy := p.(type) {
	case nil:
		io.WriteString(w, "|policy:none")
	case *accesscontrol.ACL:
		io.WriteString(w, "|policy:acl")
		for _, g := range policy.Grants() {
			writeGrantCanonical(w, g)
		}
	case *accesscontrol.RBAC:
		io.WriteString(w, "|policy:rbac")
		for _, role := range policy.Roles() {
			io.WriteString(w, "|role")
			writeString(w, role.Name)
			for _, g := range role.Grants {
				writeGrantCanonical(w, g)
			}
		}
		for _, actor := range policy.Actors() {
			io.WriteString(w, "|assign")
			writeString(w, actor)
			for _, role := range policy.RolesOf(actor) {
				writeString(w, role)
			}
		}
	case *accesscontrol.Composite:
		io.WriteString(w, "|policy:composite[")
		for _, member := range policy.Policies() {
			if err := writePolicyCanonical(w, member); err != nil {
				return err
			}
		}
		io.WriteString(w, "]")
	default:
		return fmt.Errorf("dataflow: cannot fingerprint policy of type %T; use ACL, RBAC or Composite (or cache by identity instead)", p)
	}
	return nil
}

// writeGrantCanonical writes one grant with length-prefixed fields.
func writeGrantCanonical(w io.Writer, g accesscontrol.Grant) {
	io.WriteString(w, "|grant")
	writeString(w, g.Actor)
	writeString(w, g.Datastore)
	for _, f := range g.Fields {
		writeString(w, f)
	}
	io.WriteString(w, ";perms")
	for _, p := range g.Permissions {
		io.WriteString(w, ":")
		io.WriteString(w, strconv.Itoa(int(p)))
	}
	writeString(w, g.Reason)
}

// writeString writes one length-prefixed string, so concatenated fields
// cannot alias across boundaries.
func writeString(w io.Writer, s string) {
	io.WriteString(w, ";")
	io.WriteString(w, strconv.Itoa(len(s)))
	io.WriteString(w, ":")
	io.WriteString(w, s)
}
