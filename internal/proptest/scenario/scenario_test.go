package scenario_test

import (
	"math/rand"
	"testing"

	"privascope/internal/dataflow"
	"privascope/internal/proptest"
	"privascope/internal/proptest/scenario"
)

// TestPropDrawIsPure: Draw is a pure function of the seed — the whole
// reproduction contract of the harness depends on it.
func TestPropDrawIsPure(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		a, b := scenario.Draw(seed), scenario.Draw(seed)
		fa, err := dataflow.Fingerprint(a.Model)
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		fb, err := dataflow.Fingerprint(b.Model)
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		if fa != fb {
			t.Fatalf("seed %d drew two different models: %s vs %s", seed, fa, fb)
		}
		if len(a.Profiles) != len(b.Profiles) {
			t.Fatalf("seed %d drew populations of %d and %d users", seed, len(a.Profiles), len(b.Profiles))
		}
		if a.Table.NumRows() != b.Table.NumRows() {
			t.Fatalf("seed %d drew tables of %d and %d rows", seed, a.Table.NumRows(), b.Table.NumRows())
		}
		if a.Opts != b.Opts {
			t.Fatalf("seed %d drew options %+v and %+v", seed, a.Opts, b.Opts)
		}
		return nil
	})
}

// TestPropScenarioGenerates: every drawn scenario's model generates a
// privacy LTS under the drawn options without error.
func TestPropScenarioGenerates(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		if p.Graph.StateCount() == 0 {
			t.Fatalf("seed %d: generated LTS has no states", seed)
		}
		return nil
	})
}
