// Package scenario draws complete randomized verification scenarios — a
// random data-flow model with a random policy, a random user population, a
// random health-record table and random generation options — from a single
// seed. It is the bridge between the proptest harness (which owns seeds and
// reproduction) and the synth generators (which own randomized structure):
// property tests across core, risk, runtime and the root package call
// scenario.Draw(seed) and get the same scenario on every machine.
//
// The package deliberately sits above internal/core in the dependency order,
// so internal test packages of the layers below (internal/lts) must keep
// using internal/proptest with their own local generators instead.
package scenario

import (
	"math/rand"

	"privascope/internal/anonymize"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/risk"
	"privascope/internal/synth"
)

// Scenario is one fully-drawn verification scenario. Every field is a pure
// function of Seed.
type Scenario struct {
	// Seed is the value the scenario was drawn from, echoed for failure
	// messages.
	Seed int64
	// Model is a random valid data-flow model with a random
	// ACL/RBAC/Composite policy (synth.RandomModel).
	Model *dataflow.Model
	// Profiles is a random user population over Model's fields.
	Profiles []risk.UserProfile
	// Table is a random health-record dataset and QuasiIdentifiers its QI
	// column names.
	Table            *anonymize.Table
	QuasiIdentifiers []string
	// Opts is a random-but-valid generation configuration: random flow
	// ordering, random potential-read mode, random worker count. MaxStates
	// stays at the default — random models are bounded by RandomModelSpec,
	// not by truncation, so generation never hits the state cap.
	Opts core.Options
}

// Draw materializes the scenario for one seed.
func Draw(seed int64) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	m := synth.RandomModel(rng, synth.RandomModelSpec{})
	profiles := synth.RandomPopulation(rng, m, 8)
	table, qis := synth.RandomTable(rng, 64)
	opts := core.Options{
		FlowOrdering: []core.FlowOrdering{
			core.OrderSequential, core.OrderDataDriven}[rng.Intn(2)],
		PotentialReads: []core.PotentialReadMode{
			core.PotentialReadsOff, core.PotentialReadsTerminal, core.PotentialReadsFull}[rng.Intn(3)],
		Workers: 1 + rng.Intn(4),
	}
	return &Scenario{
		Seed:             seed,
		Model:            m,
		Profiles:         profiles,
		Table:            table,
		QuasiIdentifiers: qis,
		Opts:             opts,
	}
}

// Generate runs privacy-LTS generation for the scenario with its drawn
// options.
func (s *Scenario) Generate() (*core.PrivacyLTS, error) {
	return core.GenerateWithOptions(s.Model, s.Opts)
}
