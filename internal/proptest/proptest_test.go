package proptest

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestSeedScheduleIsDeterministic(t *testing.T) {
	for round := 0; round < 100; round++ {
		if got, want := SeedOf("TestPropX", round), SeedOf("TestPropX", round); got != want {
			t.Fatalf("SeedOf not deterministic at round %d: %d vs %d", round, got, want)
		}
	}
}

func TestSeedScheduleSeparatesNamesAndRounds(t *testing.T) {
	seen := make(map[int64]string)
	for _, name := range []string{"TestPropA", "TestPropB", "TestPropC"} {
		for round := 0; round < 64; round++ {
			seed := SeedOf(name, round)
			if seed == 0 {
				t.Fatalf("SeedOf(%q, %d) = 0; zero is reserved for the unset flag", name, round)
			}
			key := fmt.Sprintf("%s/%d", name, round)
			if prev, dup := seen[seed]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, seed)
			}
			seen[seed] = key
		}
	}
}

// TestInjectedViolationIsReproducible is the mutation test the harness's
// reproducibility claim rests on: a property that fails for some seeds must
// be reported with a seed that makes CheckSeed fail with the same error, and
// the rendered failure must carry the one-line -proptest.seed reproduction.
func TestInjectedViolationIsReproducible(t *testing.T) {
	// The injected "bug": the invariant is violated whenever the scenario's
	// first draw lands in the top quarter of the range — frequent enough that
	// the default round count must catch it.
	broken := func(seed int64, rng *rand.Rand) error {
		if v := rng.Intn(100); v >= 75 {
			return fmt.Errorf("injected violation: drew %d", v)
		}
		return nil
	}

	seed, err := Check("TestInjectedViolationIsReproducible", 64, broken)
	if err == nil {
		t.Fatal("Check missed the injected violation over 64 rounds")
	}

	reproduced := CheckSeed(seed, broken)
	if reproduced == nil {
		t.Fatalf("CheckSeed(%d) did not reproduce the violation", seed)
	}
	if reproduced.Error() != err.Error() {
		t.Fatalf("reproduction diverged: first run %q, repro run %q", err, reproduced)
	}

	msg := FailureMessage("TestInjectedViolationIsReproducible", seed, err)
	wantLine := fmt.Sprintf("-proptest.seed=%d", seed)
	if !strings.Contains(msg, wantLine) {
		t.Fatalf("failure message lacks the reproduction flag %q:\n%s", wantLine, msg)
	}
	if first := strings.SplitN(msg, "\n", 2)[0]; !strings.Contains(first, "go test -run") {
		t.Fatalf("first line of failure message is not a runnable reproduction: %q", first)
	}
}

func TestCheckPassesCleanProperty(t *testing.T) {
	calls := 0
	seed, err := Check("TestCheckPassesCleanProperty", 16, func(seed int64, rng *rand.Rand) error {
		calls++
		if seed == 0 {
			return errors.New("harness handed out the reserved zero seed")
		}
		return nil
	})
	if err != nil || seed != 0 {
		t.Fatalf("clean property reported failure: seed=%d err=%v", seed, err)
	}
	if calls != 16 {
		t.Fatalf("Check ran %d rounds, want 16", calls)
	}
}

func TestRunHonoursReproSeed(t *testing.T) {
	old := *seedFlag
	*seedFlag = 424242
	defer func() { *seedFlag = old }()

	var got []int64
	Run(t, func(seed int64, rng *rand.Rand) error {
		got = append(got, seed)
		return nil
	})
	if len(got) != 1 || got[0] != 424242 {
		t.Fatalf("repro mode ran seeds %v, want exactly [424242]", got)
	}
}

func TestRoundsFlagOverridesDefault(t *testing.T) {
	old := *roundsFlag
	*roundsFlag = 3
	defer func() { *roundsFlag = old }()

	calls := 0
	Run(t, func(seed int64, rng *rand.Rand) error {
		calls++
		return nil
	})
	if calls != 3 {
		t.Fatalf("Run executed %d rounds with -proptest.rounds=3, want 3", calls)
	}
}
