// Package proptest is the seed-reproducible property-testing harness of this
// repository: every randomized invariant test in the module runs through it,
// so every failure — no matter which package, which property, which CI soak —
// reduces to a single number that reproduces it locally:
//
//	go test -run 'TestPropFoo' ./internal/foo -proptest.seed=1234567890
//
// The harness is deliberately free of dependencies on the packages it helps
// test (it imports only the standard library), so it can be used from any
// test file in the module, including internal test packages of the lowest
// layers (internal/lts). The scenario fuzzer that bundles random data-flow
// models, policies, populations and datasets lives in the scenario
// subpackage; random model generation itself is internal/synth's job.
//
// # Round model
//
// A property is a function of one seed. Run executes it for a bounded number
// of rounds (Rounds, configurable with -proptest.rounds; halved under
// -short), deriving each round's seed deterministically from the property
// name, so plain `go test ./...` explores the same corpus on every machine
// and CI soaks with larger -proptest.rounds extend — never replace — that
// corpus. When -proptest.seed=N is given, exactly one round runs with seed N:
// the reproduction mode printed by every failure.
package proptest

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"
)

var (
	seedFlag = flag.Int64("proptest.seed", 0,
		"run every proptest property for exactly one round with this scenario seed (reproduction mode)")
	roundsFlag = flag.Int("proptest.rounds", 0,
		"rounds per proptest property; 0 selects the default (bounded short-mode corpus)")
)

// DefaultRounds is the per-property round count of a plain `go test` run. It
// is sized so the whole-module property catalog stays well within tier-1 test
// budget while still exercising dozens of distinct scenarios per package.
const DefaultRounds = 8

// Rounds returns the number of rounds each property runs: -proptest.rounds
// when set, otherwise DefaultRounds (halved under -short so `go test -short`
// stays snappy). A -proptest.seed reproduction always runs exactly one round
// regardless of this value.
func Rounds() int {
	if *roundsFlag > 0 {
		return *roundsFlag
	}
	if testing.Short() {
		return DefaultRounds / 2
	}
	return DefaultRounds
}

// ReproSeed returns the seed forced by -proptest.seed, and whether the flag
// was set.
func ReproSeed() (int64, bool) { return *seedFlag, *seedFlag != 0 }

// SeedOf derives the seed of one round of the named property. The derivation
// is pure (FNV-1a over the name, mixed with the round index through the
// splitmix64 finalizer), so a property's corpus is stable across runs,
// machines and -run selections, and extending the round count only appends
// new seeds.
func SeedOf(name string, round int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	seed := int64(mix64(h + uint64(round)*0x9e3779b97f4a7c15))
	if seed == 0 {
		// Seed zero is reserved for "-proptest.seed unset"; remap it.
		seed = int64(mix64(h + 1))
	}
	return seed
}

// mix64 is the splitmix64 finalizer: a cheap bijection with full avalanche,
// so consecutive round indices yield unrelated seeds.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Property is one randomized invariant: it builds a scenario from the seed
// (directly or through the supplied rng, which is seeded with the same
// value), checks the invariant, and returns a non-nil error describing the
// violation. Properties must be pure functions of the seed — that is the
// whole reproducibility contract.
type Property func(seed int64, rng *rand.Rand) error

// Check runs the property for the given rounds using the seed schedule of
// the named property, returning the first failing seed and its error;
// failed is false when every round passed. Check never touches testing.T, so
// the harness's own tests can mutation-test it: inject a violated invariant,
// assert the returned seed reproduces the violation.
func Check(name string, rounds int, prop Property) (seed int64, err error) {
	for round := 0; round < rounds; round++ {
		seed := SeedOf(name, round)
		if err := prop(seed, rand.New(rand.NewSource(seed))); err != nil {
			return seed, err
		}
	}
	return 0, nil
}

// CheckSeed runs exactly one round of the property with the given seed.
func CheckSeed(seed int64, prop Property) error {
	return prop(seed, rand.New(rand.NewSource(seed)))
}

// Run executes the property under the harness configuration: one round with
// -proptest.seed when set, otherwise Rounds() rounds over the deterministic
// seed schedule of t.Name(). The first violation fails the test with a
// single-line `-proptest.seed=N` reproduction header followed by the
// property's error.
func Run(t testing.TB, prop Property) {
	t.Helper()
	if seed, ok := ReproSeed(); ok {
		if err := CheckSeed(seed, prop); err != nil {
			t.Fatalf("%s", FailureMessage(t.Name(), seed, err))
		}
		return
	}
	if seed, err := Check(t.Name(), Rounds(), prop); err != nil {
		t.Fatalf("%s", FailureMessage(t.Name(), seed, err))
	}
}

// FailureMessage renders the harness's failure report: the first line is the
// complete reproduction command for the failing seed, the rest is the
// property's own account of the violation.
func FailureMessage(name string, seed int64, err error) string {
	return fmt.Sprintf("property %s failed; reproduce with: go test -run '%s' -proptest.seed=%d\n%v",
		name, name, seed, err)
}
