package risk

import (
	"strings"
	"testing"
	"testing/quick"

	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/schema"
)

// clinicModel builds the fixture used across the risk tests: a care service
// the user consents to, a research service they do not, and an administrator
// with maintenance read access to the EHR who takes part in no flow.
func clinicModel(t testing.TB, adminEHRFields []string) *dataflow.Model {
	t.Helper()
	ehrSchema := schema.MustSchema("ehr",
		schema.Field{Name: "name", Category: schema.CategoryIdentifier},
		schema.Field{Name: "diagnosis", Category: schema.CategorySensitive},
		schema.Field{Name: "treatment", Category: schema.CategorySensitive},
	)
	anonSchema := schema.MustSchema("anon_ehr",
		schema.Field{Name: "diagnosis_anon", Category: schema.CategorySensitive, Pseudonymised: true},
	)
	grants := []accesscontrol.Grant{
		{Actor: "doctor", Datastore: "ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}},
		{Actor: "nurse", Datastore: "ehr", Fields: []string{"name", "treatment"},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}},
		{Actor: "researcher", Datastore: "anon_ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}},
		{Actor: "doctor", Datastore: "anon_ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionWrite}},
	}
	if len(adminEHRFields) > 0 {
		grants = append(grants, accesscontrol.Grant{Actor: "admin", Datastore: "ehr", Fields: adminEHRFields,
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}, Reason: "maintenance"})
	}
	acl := accesscontrol.MustACL(grants...)

	b := dataflow.NewBuilder("clinic", dataflow.Actor{ID: "patient", Name: "Patient"})
	b.AddActors(
		dataflow.Actor{ID: "doctor", Name: "Doctor"},
		dataflow.Actor{ID: "nurse", Name: "Nurse"},
		dataflow.Actor{ID: "admin", Name: "Administrator"},
		dataflow.Actor{ID: "researcher", Name: "Researcher"},
	)
	b.AddDatastore(schema.Datastore{ID: "ehr", Name: "EHR", Schema: ehrSchema})
	b.AddDatastore(schema.Datastore{ID: "anon_ehr", Name: "Anonymised EHR", Schema: anonSchema, Anonymised: true})
	b.AddService(dataflow.Service{ID: "care", Name: "Care Service"})
	b.AddService(dataflow.Service{ID: "research", Name: "Research Service"})
	b.Flow("care", "patient", "doctor", []string{"name", "diagnosis"}, "consultation")
	b.AuthoredFlow("care", "doctor", "ehr", []string{"name", "diagnosis", "treatment"}, []string{"treatment"}, "record")
	b.Flow("care", "ehr", "nurse", []string{"name", "treatment"}, "administer treatment")
	b.Flow("research", "doctor", "anon_ehr", []string{"diagnosis"}, "anonymise")
	b.Flow("research", "anon_ehr", "researcher", []string{"diagnosis_anon"}, "analysis")
	b.WithPolicy(acl)
	return b.MustBuild()
}

func generate(t testing.TB, m *dataflow.Model) *core.PrivacyLTS {
	t.Helper()
	p, err := core.Generate(m)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return p
}

func patientProfile() UserProfile {
	return UserProfile{
		ID:                "patient-1",
		ConsentedServices: []string{"care"},
		Sensitivities: map[string]float64{
			"diagnosis":      SensitivityHigh,
			"diagnosis_anon": SensitivityMedium,
			"treatment":      SensitivityMedium,
		},
		DefaultSensitivity: 0.1,
	}
}

func TestLevelString(t *testing.T) {
	tests := []struct {
		l    Level
		want string
	}{
		{LevelNone, "none"}, {LevelLow, "low"}, {LevelMedium, "medium"}, {LevelHigh, "high"}, {Level(42), "level(42)"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Errorf("Level(%d).String() = %q, want %q", int(tt.l), got, tt.want)
		}
	}
	for _, l := range []Level{LevelNone, LevelLow, LevelMedium, LevelHigh} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("catastrophic"); err == nil {
		t.Error("ParseLevel(catastrophic) should fail")
	}
}

func TestUserProfile(t *testing.T) {
	p := patientProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.Sensitivity("diagnosis"); got != SensitivityHigh {
		t.Errorf("Sensitivity(diagnosis) = %v", got)
	}
	if got := p.Sensitivity("name"); got != 0.1 {
		t.Errorf("Sensitivity(name) = %v, want default", got)
	}
	if !p.Consented("care") || p.Consented("research") {
		t.Error("Consented misbehaves")
	}

	bad := UserProfile{Sensitivities: map[string]float64{"x": 1.5}}
	if err := bad.Validate(); err == nil {
		t.Error("sensitivity > 1 accepted")
	}
	bad2 := UserProfile{DefaultSensitivity: -0.1}
	if err := bad2.Validate(); err == nil {
		t.Error("negative default sensitivity accepted")
	}
}

func TestMatrixBuckets(t *testing.T) {
	m := DefaultMatrix()
	if err := m.Validate(); err != nil {
		t.Fatalf("DefaultMatrix invalid: %v", err)
	}
	tests := []struct {
		impact float64
		want   Level
	}{
		{0, LevelNone}, {0.1, LevelLow}, {0.34, LevelMedium}, {0.5, LevelMedium}, {0.67, LevelHigh}, {1, LevelHigh},
	}
	for _, tt := range tests {
		if got := m.ImpactLevel(tt.impact); got != tt.want {
			t.Errorf("ImpactLevel(%v) = %v, want %v", tt.impact, got, tt.want)
		}
	}
	if got := m.LikelihoodLevel(0.15); got != LevelLow {
		t.Errorf("LikelihoodLevel(0.15) = %v, want low", got)
	}
	if got := m.LikelihoodLevel(0.3); got != LevelMedium {
		t.Errorf("LikelihoodLevel(0.3) = %v, want medium", got)
	}
	// High impact with low likelihood is medium risk (case study IV-A).
	if got := m.Risk(LevelHigh, LevelLow); got != LevelMedium {
		t.Errorf("Risk(high, low) = %v, want medium", got)
	}
	if got := m.Risk(LevelLow, LevelLow); got != LevelLow {
		t.Errorf("Risk(low, low) = %v, want low", got)
	}
	if got := m.Risk(LevelNone, LevelHigh); got != LevelNone {
		t.Errorf("Risk(none, high) = %v, want none", got)
	}
	if got := m.Risk(LevelHigh, LevelHigh); got != LevelHigh {
		t.Errorf("Risk(high, high) = %v, want high", got)
	}
}

func TestMatrixValidateRejections(t *testing.T) {
	m := DefaultMatrix()
	m.ImpactThresholds = [2]float64{0.9, 0.1}
	if err := m.Validate(); err == nil {
		t.Error("descending impact thresholds accepted")
	}
	m = DefaultMatrix()
	m.LikelihoodThresholds = [2]float64{-0.5, 0.5}
	if err := m.Validate(); err == nil {
		t.Error("negative likelihood threshold accepted")
	}
	m = DefaultMatrix()
	m.Table[0][0] = Level(99)
	if err := m.Validate(); err == nil {
		t.Error("invalid table level accepted")
	}
}

func TestMatrixMonotonicProperty(t *testing.T) {
	// Property: with the default matrix, risk is monotone in impact and
	// likelihood.
	m := DefaultMatrix()
	levels := []Level{LevelLow, LevelMedium, LevelHigh}
	f := func(i1, l1, i2, l2 uint8) bool {
		a := levels[int(i1)%3]
		b := levels[int(l1)%3]
		c := levels[int(i2)%3]
		d := levels[int(l2)%3]
		if a <= c && b <= d {
			return m.Risk(a, b) <= m.Risk(c, d)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewAnalyzerValidation(t *testing.T) {
	if _, err := NewAnalyzer(Config{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if _, err := NewAnalyzer(Config{Scenarios: []Scenario{{Name: "x", Probability: 2}}}); err == nil {
		t.Error("scenario probability > 1 accepted")
	}
	badMatrix := DefaultMatrix()
	badMatrix.Table[1][1] = Level(77)
	if _, err := NewAnalyzer(Config{Matrix: badMatrix}); err == nil {
		t.Error("invalid matrix accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAnalyzer should panic on invalid config")
		}
	}()
	MustAnalyzer(Config{Scenarios: []Scenario{{Name: "x", Probability: -1}}})
}

func TestAnalyzeErrors(t *testing.T) {
	a := MustAnalyzer(Config{})
	if _, err := a.Analyze(nil, patientProfile()); err == nil {
		t.Error("nil LTS accepted")
	}
	p := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	bad := patientProfile()
	bad.Sensitivities["x"] = 3
	if _, err := a.Analyze(p, bad); err == nil {
		t.Error("invalid profile accepted")
	}
	unknown := patientProfile()
	unknown.ConsentedServices = []string{"ghost-service"}
	if _, err := a.Analyze(p, unknown); err == nil {
		t.Error("consent to unknown service accepted")
	}
}

func TestAnalyzeIdentifiesUnwantedDisclosure(t *testing.T) {
	// Case study IV-A shape: the user consents to the care service only and
	// is highly sensitive about the diagnosis. The administrator has read
	// access to the EHR, so after the care service runs the administrator
	// could read the diagnosis: a Medium-risk finding.
	p := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	a := MustAnalyzer(Config{})
	assessment, err := a.Analyze(p, patientProfile())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	wantAllowed := []string{"doctor", "nurse"}
	if len(assessment.AllowedActors) != len(wantAllowed) {
		t.Errorf("AllowedActors = %v", assessment.AllowedActors)
	}
	wantNonAllowed := map[string]bool{"admin": true, "researcher": true}
	for _, actor := range assessment.NonAllowedActors {
		if !wantNonAllowed[actor] {
			t.Errorf("unexpected non-allowed actor %q", actor)
		}
	}

	adminFindings := assessment.FindingsFor("admin")
	if len(adminFindings) == 0 {
		t.Fatal("no findings for the administrator")
	}
	var adminDiagnosis *Finding
	for i := range adminFindings {
		if adminFindings[i].DrivingField == "diagnosis" {
			adminDiagnosis = &adminFindings[i]
			break
		}
	}
	if adminDiagnosis == nil {
		t.Fatalf("no administrator finding driven by the diagnosis; findings: %+v", adminFindings)
	}
	if adminDiagnosis.Risk != LevelMedium {
		t.Errorf("administrator diagnosis risk = %v, want medium", adminDiagnosis.Risk)
	}
	if adminDiagnosis.ImpactLevel != LevelHigh {
		t.Errorf("impact level = %v, want high", adminDiagnosis.ImpactLevel)
	}
	if adminDiagnosis.LikelihoodLevel != LevelLow {
		t.Errorf("likelihood level = %v, want low", adminDiagnosis.LikelihoodLevel)
	}
	if adminDiagnosis.Explanation == "" || adminDiagnosis.Mitigation == "" {
		t.Error("finding should carry explanation and mitigation")
	}
	if assessment.OverallRisk < LevelMedium {
		t.Errorf("OverallRisk = %v, want at least medium", assessment.OverallRisk)
	}

	// Findings are sorted by decreasing risk.
	for i := 1; i < len(assessment.Findings); i++ {
		if assessment.Findings[i-1].Risk < assessment.Findings[i].Risk {
			t.Error("findings not sorted by risk")
			break
		}
	}
	if got := assessment.MaxRiskFor("admin"); got != LevelMedium {
		t.Errorf("MaxRiskFor(admin) = %v", got)
	}
	if got := assessment.MaxRiskFor("doctor"); got != LevelNone {
		t.Errorf("MaxRiskFor(doctor) = %v, want none (allowed actor)", got)
	}
	if got := len(assessment.FindingsAtLeast(LevelMedium)); got == 0 {
		t.Error("FindingsAtLeast(medium) empty")
	}
}

func TestAnalyzeMitigationReducesRisk(t *testing.T) {
	// Before: administrator may read the whole EHR -> medium risk on the
	// diagnosis. After restricting the administrator to the name field, the
	// diagnosis finding disappears and the admin's residual risk is low.
	before := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	after := generate(t, clinicModel(t, []string{"name"}))
	a := MustAnalyzer(Config{})

	beforeAssessment, err := a.Analyze(before, patientProfile())
	if err != nil {
		t.Fatal(err)
	}
	afterAssessment, err := a.Analyze(after, patientProfile())
	if err != nil {
		t.Fatal(err)
	}
	if beforeAssessment.MaxRiskFor("admin") != LevelMedium {
		t.Errorf("before: admin risk = %v, want medium", beforeAssessment.MaxRiskFor("admin"))
	}
	if got := afterAssessment.MaxRiskFor("admin"); got > LevelLow {
		t.Errorf("after: admin risk = %v, want at most low", got)
	}

	changes := Compare(beforeAssessment, afterAssessment)
	if len(changes) == 0 {
		t.Fatal("Compare returned no changes")
	}
	var diagnosisChange *Change
	for i := range changes {
		if changes[i].Actor == "admin" && changes[i].Field == "diagnosis" {
			diagnosisChange = &changes[i]
		}
	}
	if diagnosisChange == nil {
		t.Fatalf("no change entry for admin/diagnosis: %+v", changes)
	}
	if diagnosisChange.Before != LevelMedium || diagnosisChange.After != LevelNone {
		t.Errorf("diagnosis change = %s, want medium -> none", diagnosisChange)
	}
	if !strings.Contains(diagnosisChange.String(), "->") {
		t.Error("Change.String() malformed")
	}
}

func TestAnalyzeConsentChangesAllowedActors(t *testing.T) {
	p := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	a := MustAnalyzer(Config{})

	// A user who also consents to the research service makes the researcher
	// an allowed actor: findings driven by the researcher disappear.
	consentBoth := patientProfile()
	consentBoth.ConsentedServices = []string{"care", "research"}
	assessment, err := a.Analyze(p, consentBoth)
	if err != nil {
		t.Fatal(err)
	}
	if got := assessment.MaxRiskFor("researcher"); got != LevelNone {
		t.Errorf("researcher risk with consent = %v, want none", got)
	}
	for _, actor := range assessment.NonAllowedActors {
		if actor == "researcher" {
			t.Error("researcher should be allowed when research service is consented")
		}
	}

	// A user who consents to nothing sees every actor as non-allowed and a
	// higher overall risk (the declared care-service flows themselves become
	// disclosure events).
	consentNone := patientProfile()
	consentNone.ConsentedServices = nil
	none, err := a.Analyze(p, consentNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(none.AllowedActors) != 0 {
		t.Errorf("AllowedActors without consent = %v", none.AllowedActors)
	}
	if none.OverallRisk < assessment.OverallRisk {
		t.Errorf("risk without consent (%v) should be >= risk with consent (%v)",
			none.OverallRisk, assessment.OverallRisk)
	}
	if got := none.MaxRiskFor("doctor"); got == LevelNone {
		t.Error("doctor handling data without consent should carry some risk")
	}
}

func TestAnalyzeInsensitiveUserHasNoFindings(t *testing.T) {
	p := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	a := MustAnalyzer(Config{})
	indifferent := UserProfile{ID: "u", ConsentedServices: []string{"care", "research"}}
	assessment, err := a.Analyze(p, indifferent)
	if err != nil {
		t.Fatal(err)
	}
	if len(assessment.Findings) != 0 {
		t.Errorf("indifferent user has %d findings", len(assessment.Findings))
	}
	if assessment.OverallRisk != LevelNone {
		t.Errorf("OverallRisk = %v, want none", assessment.OverallRisk)
	}
}

func TestCompareNilAssessments(t *testing.T) {
	p := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	a := MustAnalyzer(Config{})
	assessment, err := a.Analyze(p, patientProfile())
	if err != nil {
		t.Fatal(err)
	}
	changes := Compare(nil, assessment)
	if len(changes) == 0 {
		t.Fatal("Compare(nil, a) should report the new findings")
	}
	for _, c := range changes {
		if c.Before != LevelNone {
			t.Errorf("before level for new finding = %v, want none", c.Before)
		}
	}
}

func TestDefaultScenarios(t *testing.T) {
	scenarios := DefaultScenarios()
	if len(scenarios) != 3 {
		t.Fatalf("len(DefaultScenarios()) = %d, want 3", len(scenarios))
	}
	total := 0.0
	var hasServiceScenario bool
	for _, s := range scenarios {
		if s.Probability <= 0 || s.Probability > 1 {
			t.Errorf("scenario %q probability %v out of range", s.Name, s.Probability)
		}
		if s.AppliesToService {
			hasServiceScenario = true
		}
		total += s.Probability
	}
	if !hasServiceScenario {
		t.Error("no scenario models execution of a non-consented service")
	}
	if total > 1 {
		t.Errorf("default scenario probabilities sum to %v > 1", total)
	}
}
