package risk

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"privascope/internal/core"
)

// The risk analysis "takes the user privacy control requirements and
// annotates the model with their risk; hence there is an instance for each
// user. The process can be executed with running users of the system, or
// with simulated users in the development phase." (Section III). This file
// provides the per-population aggregation used at design time: every profile
// is assessed against one generated model and the results are summarised.

// UserRisk is the per-user entry of a population analysis.
type UserRisk struct {
	// UserID identifies the profile.
	UserID string
	// OverallRisk is the user's maximum finding risk.
	OverallRisk Level
	// Findings is the number of findings for the user.
	Findings int
	// HighestImpactField is the field driving the user's highest-risk
	// finding, if any.
	HighestImpactField string
	// WorstActor is the non-allowed actor responsible for the user's
	// highest-risk finding, if any.
	WorstActor string
}

// PopulationAssessment aggregates the assessments of many user profiles
// against one privacy model.
type PopulationAssessment struct {
	// Users holds one entry per analysed profile, in input order.
	Users []UserRisk
	// Distribution counts users per overall risk level.
	Distribution map[Level]int
	// UsersAtRisk is the number of users whose overall risk is at least
	// medium.
	UsersAtRisk int
	// WorstActors counts, per actor, how many users' highest-risk finding it
	// is responsible for. It points designers at the access rights whose
	// mitigation pays off most.
	WorstActors map[string]int
	// DistinctShapes is the number of distinct profile shapes
	// (UserProfile.Fingerprint) in the population — the number of full
	// analyses actually run; every other user shared a cached assessment.
	DistinctShapes int
}

// WorstActorsRanked returns the actors of WorstActors ordered by how many
// users they put at risk, ties broken alphabetically.
func (p *PopulationAssessment) WorstActorsRanked() []string {
	actors := make([]string, 0, len(p.WorstActors))
	for actor := range p.WorstActors {
		actors = append(actors, actor)
	}
	sort.Slice(actors, func(i, j int) bool {
		if p.WorstActors[actors[i]] != p.WorstActors[actors[j]] {
			return p.WorstActors[actors[i]] > p.WorstActors[actors[j]]
		}
		return actors[i] < actors[j]
	})
	return actors
}

// AnalyzePopulation assesses every profile against the privacy model and
// aggregates the results. Profiles are analysed independently; an error in
// any profile aborts the analysis so partial results are never mistaken for
// complete ones.
//
// Assessments are deduplicated through an AssessmentCache: real populations
// hold millions of users but few distinct privacy-control shapes, so the
// full analysis runs once per (model, shape) pair and every same-shaped user
// reuses it. The aggregation itself is O(users).
func (a *Analyzer) AnalyzePopulation(p *core.PrivacyLTS, profiles []UserProfile) (*PopulationAssessment, error) {
	return a.AnalyzePopulationContext(context.Background(), p, profiles)
}

// AnalyzePopulationContext is AnalyzePopulation with cancellation: ctx is
// polled between profiles (and inside each underlying analysis), so a
// cancelled context aborts the population scan promptly with ctx.Err().
func (a *Analyzer) AnalyzePopulationContext(ctx context.Context, p *core.PrivacyLTS, profiles []UserProfile) (*PopulationAssessment, error) {
	cache, err := NewAssessmentCache(a)
	if err != nil {
		return nil, err
	}
	return AnalyzePopulationCached(ctx, cache, p, profiles)
}

// AnalyzePopulationCached is AnalyzePopulationContext over a caller-supplied
// assessment cache, so long-lived sessions (privascope.Engine) can share one
// cache across many population scans and individual assessments of the same
// model. DistinctShapes still counts the shapes of this population only, not
// the cache's total size.
func AnalyzePopulationCached(ctx context.Context, cache *AssessmentCache, p *core.PrivacyLTS, profiles []UserProfile) (*PopulationAssessment, error) {
	if p == nil {
		return nil, errors.New("risk: privacy LTS must not be nil")
	}
	if len(profiles) == 0 {
		return nil, errors.New("risk: population is empty")
	}
	out := &PopulationAssessment{
		Distribution: make(map[Level]int),
		WorstActors:  make(map[string]int),
	}
	shapes := make(map[string]bool)
	for i, profile := range profiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// One fingerprint computation per profile, shared by the cache key
		// and the distinct-shape accounting.
		fingerprint := profile.Fingerprint()
		assessment, err := cache.AnalyzeFingerprinted(ctx, p, profile, fingerprint)
		if err != nil {
			return nil, fmt.Errorf("risk: analysing profile %d (%s): %w", i, profile.ID, err)
		}
		shapes[fingerprint] = true
		entry := UserRisk{
			UserID:      profile.ID,
			OverallRisk: assessment.OverallRisk,
			Findings:    len(assessment.Findings),
		}
		if len(assessment.Findings) > 0 {
			top := assessment.Findings[0] // findings are sorted by risk, then impact
			entry.HighestImpactField = top.DrivingField
			entry.WorstActor = top.Actor
			out.WorstActors[top.Actor]++
		}
		out.Users = append(out.Users, entry)
		out.Distribution[assessment.OverallRisk]++
		if assessment.OverallRisk >= LevelMedium {
			out.UsersAtRisk++
		}
	}
	out.DistinctShapes = len(shapes)
	return out, nil
}
