package risk

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"privascope/internal/core"
	"privascope/internal/lts"
)

// Finding is one assessed disclosure event: a transition of the privacy LTS
// through which a non-allowed actor identifies (or becomes able to identify)
// personal data the user is sensitive about.
type Finding struct {
	// Transition is the LTS transition the finding refers to.
	Transition lts.Transition
	// Action, Datastore and Fields are copied from the transition label for
	// convenience.
	Action    core.Action
	Datastore string
	Fields    []string
	// Actor is the non-allowed actor put in a position to identify (or who
	// identifies) the sensitive data. The paper attaches the risk to the
	// disclosure event affecting this actor.
	Actor string
	// PerformedBy is the actor performing the transition; for potential
	// reads it equals Actor, for declared flows it may be an allowed actor
	// whose action exposes data to Actor (for example a doctor writing the
	// diagnosis into a store the administrator may read).
	PerformedBy string
	// Potential marks findings on policy-permitted reads that no declared
	// flow performs.
	Potential bool
	// Service is the (non-consented) service the transition belongs to, if
	// any.
	Service string
	// DrivingField is the field whose sensitivity determines the impact.
	DrivingField string
	// Impact is the maximum sensitivity change the transition causes.
	Impact      float64
	ImpactLevel Level
	// Likelihood is the summed probability of the scenarios under which the
	// event occurs; zero for events within consented services.
	Likelihood      float64
	LikelihoodLevel Level
	// Scenarios lists the scenario names contributing to the likelihood.
	// The slice is shared across findings with the same likelihood class
	// (like the Findings of a cached Assessment, it must be treated as
	// immutable).
	Scenarios []string
	// Risk is the combined risk level from the matrix.
	Risk Level
	// Explanation is a human-readable account of the finding.
	Explanation string
	// Mitigation is a suggested change that would remove or reduce the risk.
	Mitigation string
}

// Assessment is the result of analysing one user profile against a privacy
// LTS.
type Assessment struct {
	// Profile is the analysed user profile.
	Profile UserProfile
	// AllowedActors took part in at least one consented service.
	AllowedActors []string
	// NonAllowedActors are every other actor of the model.
	NonAllowedActors []string
	// Findings are the assessed disclosure events, sorted by decreasing risk
	// then impact.
	Findings []Finding
	// OverallRisk is the maximum risk across findings (LevelNone if there
	// are none).
	OverallRisk Level
}

// FindingsFor returns the findings involving the given actor.
func (a *Assessment) FindingsFor(actor string) []Finding {
	var out []Finding
	for _, f := range a.Findings {
		if f.Actor == actor {
			out = append(out, f)
		}
	}
	return out
}

// FindingsAtLeast returns the findings whose risk is at least the given
// level.
func (a *Assessment) FindingsAtLeast(level Level) []Finding {
	var out []Finding
	for _, f := range a.Findings {
		if f.Risk >= level {
			out = append(out, f)
		}
	}
	return out
}

// MaxRiskFor returns the highest risk among findings involving the actor.
func (a *Assessment) MaxRiskFor(actor string) Level {
	max := LevelNone
	for _, f := range a.FindingsFor(actor) {
		if f.Risk > max {
			max = f.Risk
		}
	}
	return max
}

// Analyzer performs unwanted-disclosure risk analysis. It never mutates the
// privacy LTS it analyses, so one generated model can be assessed against
// many user profiles.
type Analyzer struct {
	cfg Config

	// Scenario aggregates, precomputed at construction: the summed
	// probability and contributing names of the service-level scenarios (for
	// declared flows of non-consented services) and of the remaining
	// scenarios (for potential reads and mere exposure). The name slices are
	// shared read-only across every finding they apply to.
	serviceLikelihood float64
	serviceScenarios  []string
	otherLikelihood   float64
	otherScenarios    []string
}

// NewAnalyzer returns an analyzer with the given configuration; zero-value
// fields select the defaults.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Matrix.Validate(); err != nil {
		return nil, err
	}
	// Written to reject NaN as well: a NaN probability would poison the
	// precomputed likelihood aggregates below.
	for _, s := range cfg.Scenarios {
		if !(s.Probability >= 0 && s.Probability <= 1) {
			return nil, fmt.Errorf("risk: scenario %q probability %v outside [0,1]", s.Name, s.Probability)
		}
	}
	a := &Analyzer{cfg: cfg}
	for _, s := range cfg.Scenarios {
		if s.AppliesToService {
			a.serviceLikelihood += s.Probability
			a.serviceScenarios = append(a.serviceScenarios, s.Name)
		} else {
			a.otherLikelihood += s.Probability
			a.otherScenarios = append(a.otherScenarios, s.Name)
		}
	}
	if a.serviceLikelihood > 1 {
		a.serviceLikelihood = 1
	}
	if a.otherLikelihood > 1 {
		a.otherLikelihood = 1
	}
	return a, nil
}

// MustAnalyzer is like NewAnalyzer but panics on error; for fixtures.
func MustAnalyzer(cfg Config) *Analyzer {
	a, err := NewAnalyzer(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Analyze assesses the user profile against the privacy LTS.
func (a *Analyzer) Analyze(p *core.PrivacyLTS, profile UserProfile) (*Assessment, error) {
	return a.AnalyzeContext(context.Background(), p, profile)
}

// AnalyzeContext is Analyze with cancellation: ctx is polled while walking
// the model's transitions, so analyses of very large models abort promptly
// with ctx.Err() when the caller cancels or the deadline passes.
//
// The walk runs over the model's compiled view (core.PrivacyLTS.Compiled):
// per-edge labels and newly-set state variables are pre-resolved to dense
// actor/field indices once per model, and the profile's sensitivities and the
// allowed-actor set are resolved to index-addressed tables once per call, so
// the per-transition work is pure array arithmetic — no map lookups, no label
// rendering and no Variable allocation.
func (a *Analyzer) AnalyzeContext(ctx context.Context, p *core.PrivacyLTS, profile UserProfile) (*Assessment, error) {
	if p == nil {
		return nil, errors.New("risk: privacy LTS must not be nil")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	for _, svc := range profile.ConsentedServices {
		if _, ok := p.Model.Service(svc); !ok {
			return nil, fmt.Errorf("risk: profile consents to unknown service %q", svc)
		}
	}

	allowed := p.Model.ServiceActors(profile.ConsentedServices...)
	allowedSet := make(map[string]bool, len(allowed))
	for _, actor := range allowed {
		allowedSet[actor] = true
	}
	var nonAllowed []string
	for _, actor := range p.Model.ActorIDs() {
		if !allowedSet[actor] {
			nonAllowed = append(nonAllowed, actor)
		}
	}
	sort.Strings(nonAllowed)

	assessment := &Assessment{
		Profile:          profile,
		AllowedActors:    allowed,
		NonAllowedActors: nonAllowed,
		OverallRisk:      LevelNone,
	}

	view := p.Compiled()
	actors := view.Actors()
	fields := view.Fields()

	// Per-call index tables: σ(d) per vocabulary field and "is allowed" per
	// vocabulary actor, so σ(d, a) inside the edge loop is two array loads.
	allowedIdx := make([]bool, len(actors))
	for i, name := range actors {
		allowedIdx[i] = allowedSet[name]
	}
	sens := make([]float64, len(fields))
	for i, f := range fields {
		sens[i] = profile.Sensitivity(f)
	}
	consentedSet := make(map[string]bool, len(profile.ConsentedServices))
	for _, svc := range profile.ConsentedServices {
		consentedSet[svc] = true
	}

	// Report-rendering memos for this call: every finding quotes names drawn
	// from the same small vocabulary and formats impact/likelihood values
	// drawn from the profile's sensitivity set, so each distinct string is
	// quoted and each distinct float formatted exactly once. The label's
	// field-set copy is likewise shared per label across the findings (and
	// calls) that reference it.
	rc := newRenderCache()
	fieldSets := make(map[*core.TransitionLabel][]string)

	// Whole-report memo: a finding's explanation and mitigation are fully
	// determined by the interned label string (which fixes action, fields,
	// performer, datastore and the potential marker), the label's service,
	// the at-risk actor, the driving field (which fixes the impact through
	// the profile's sensitivities) and the likelihood class. The same
	// disclosure event recurs from many states of the LTS — every state a
	// potential read is enabled in repeats it — so each distinct event is
	// rendered once per analysis.
	type reportKey struct {
		label        int32
		actor        int32
		driving      int32
		service      string
		serviceClass bool
	}
	type reportText struct {
		explanation string
		mitigation  string
	}
	reports := make(map[reportKey]reportText)

	// Per-actor exposure scratch, reused across every transition via epoch
	// stamping (no clearing, no per-transition map). Slots are only ever
	// stamped with a positive impact, and ascending actor index equals
	// ascending actor name, so iterating the slots in order reproduces the
	// sorted-actor finding order of the per-transition assessment.
	type exposure struct {
		impact float64
		// driving is the field whose sensitivity determines the impact.
		driving int32
		// identified is true when the transition sets a "has identified"
		// variable for the actor, i.e. the actor actually receives the data
		// through this transition rather than merely becoming able to read
		// it later.
		identified bool
		stamp      uint32
	}
	slots := make([]exposure, len(actors))
	epoch := uint32(0)

	numEdges := view.Graph.NumEdges()
	for e := 0; e < numEdges; e++ {
		// Poll between transitions, spaced out so the atomic load never
		// shows up on profiles of small models.
		if e&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		label := view.Label(int32(e))
		if label == nil {
			continue
		}

		// Impact per non-allowed actor: the maximum sensitivity among the
		// state variables the transition newly sets for that actor, measured
		// with σ(d, a) so variables of allowed actors contribute nothing. The
		// change is measured relative to the source state; because variables
		// only accumulate along paths from the absolute privacy state, this
		// equals the paper's "change relative to the absolute privacy state"
		// for the variables this transition introduces.
		epoch++
		exposed := false
		for _, chg := range view.Changes(int32(e)) {
			if allowedIdx[chg.Actor] {
				continue
			}
			s := sens[chg.Field]
			if s <= 0 {
				continue
			}
			slot := &slots[chg.Actor]
			if slot.stamp != epoch {
				*slot = exposure{stamp: epoch}
			}
			if s > slot.impact {
				slot.impact = s
				slot.driving = chg.Field
			}
			if chg.Kind == core.HasIdentified {
				slot.identified = true
			}
			exposed = true
		}
		if !exposed {
			continue
		}

		// Likelihood: which scenarios can make the disclosure to this actor
		// happen? Declared flows of non-consented services that actually hand
		// the data over fall under the service-level scenarios; potential
		// reads and mere exposure fall under the remaining scenarios
		// (accidental access, maintenance exposure).
		consented := label.Service != "" && consentedSet[label.Service]
		tr := view.Graph.TransitionAt(int32(e))
		fieldsJoined := view.FieldsJoined(int32(e))
		fieldSet, ok := fieldSets[label]
		if !ok {
			fieldSet = label.FieldSet()
			fieldSets[label] = fieldSet
		}
		lid := view.Graph.LabelID(int32(e))
		for ai := range slots {
			slot := &slots[ai]
			if slot.stamp != epoch {
				continue
			}
			serviceClass := !label.Potential && slot.identified && !consented
			likelihood := a.otherLikelihood
			scenarioNames := a.otherScenarios
			if serviceClass {
				likelihood = a.serviceLikelihood
				scenarioNames = a.serviceScenarios
			}

			impactLevel := a.cfg.Matrix.ImpactLevel(slot.impact)
			likelihoodLevel := a.cfg.Matrix.LikelihoodLevel(likelihood)
			riskLevel := a.cfg.Matrix.Risk(impactLevel, likelihoodLevel)

			finding := Finding{
				Transition:      tr,
				Action:          label.Action,
				Actor:           actors[ai],
				PerformedBy:     label.Actor,
				Datastore:       label.Datastore,
				Fields:          fieldSet,
				Potential:       label.Potential,
				Service:         label.Service,
				DrivingField:    fields[slot.driving],
				Impact:          slot.impact,
				ImpactLevel:     impactLevel,
				Likelihood:      likelihood,
				LikelihoodLevel: likelihoodLevel,
				Scenarios:       scenarioNames,
				Risk:            riskLevel,
			}
			key := reportKey{label: lid, actor: int32(ai), driving: slot.driving,
				service: label.Service, serviceClass: serviceClass}
			text, ok := reports[key]
			if !ok {
				text = reportText{
					explanation: a.explain(&finding, fieldsJoined, rc),
					mitigation:  a.suggestMitigation(&finding, rc),
				}
				reports[key] = text
			}
			finding.Explanation = text.explanation
			finding.Mitigation = text.mitigation
			assessment.Findings = append(assessment.Findings, finding)
			if finding.Risk > assessment.OverallRisk {
				assessment.OverallRisk = finding.Risk
			}
		}
	}

	// Order by decreasing risk, then impact, then actor. Sorting a
	// permutation of indices and materialising once moves 4-byte ints
	// through the sort instead of the wide Finding structs; the stable
	// index sort reproduces sort.SliceStable's order exactly.
	if n := len(assessment.Findings); n > 1 {
		findings := assessment.Findings
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		slices.SortStableFunc(perm, func(i, j int32) int {
			fi, fj := &findings[i], &findings[j]
			if fi.Risk != fj.Risk {
				if fi.Risk > fj.Risk {
					return -1
				}
				return 1
			}
			if fi.Impact != fj.Impact {
				if fi.Impact > fj.Impact {
					return -1
				}
				return 1
			}
			return strings.Compare(fi.Actor, fj.Actor)
		})
		sorted := make([]Finding, n)
		for i, p := range perm {
			sorted[i] = findings[p]
		}
		assessment.Findings = sorted
	}
	return assessment, nil
}

// renderCache memoises the report-path string conversions of one analysis:
// quoted identifiers (every finding quotes actor, store and field names drawn
// from the same vocabulary) and fixed-point floats (impacts come from the
// profile's sensitivity set, likelihoods from the analyzer's two scenario
// aggregates), so each distinct value goes through strconv exactly once per
// Analyze call.
type renderCache struct {
	quoted map[string]string
	fixed  map[float64]string
}

func newRenderCache() *renderCache {
	return &renderCache{quoted: make(map[string]string), fixed: make(map[float64]string)}
}

// quote returns strconv.Quote(s), memoised.
func (r *renderCache) quote(s string) string {
	q, ok := r.quoted[s]
	if !ok {
		q = strconv.Quote(s)
		r.quoted[s] = q
	}
	return q
}

// fixed2 returns the "%.2f" rendering of v, memoised.
func (r *renderCache) fixed2(v float64) string {
	s, ok := r.fixed[v]
	if !ok {
		s = strconv.FormatFloat(v, 'f', 2, 64)
		r.fixed[v] = s
	}
	return s
}

// explain renders the finding's explanation. It is on the per-finding report
// path of every analysis, so it writes directly into one pre-sized
// strings.Builder through the render cache instead of going through fmt; the
// output is byte-identical to the earlier fmt-based rendering, which the
// reference-equivalence tests pin down. fieldsJoined is the label's field
// list pre-joined with ", " (resolved once per edge by the compiled view).
func (a *Analyzer) explain(f *Finding, fieldsJoined string, rc *renderCache) string {
	var b strings.Builder
	b.Grow(160 + len(f.Actor) + len(f.PerformedBy) + len(f.Service) + len(f.Datastore) +
		len(fieldsJoined) + len(f.DrivingField))
	writeQuoted := func(s string) { b.WriteString(rc.quote(s)) }
	writeFixed2 := func(v float64) { b.WriteString(rc.fixed2(v)) }
	switch {
	case f.Potential:
		b.WriteString("non-allowed actor ")
		writeQuoted(f.Actor)
		b.WriteString(" may ")
		b.WriteString(f.Action.String())
		b.WriteString(" ")
		b.WriteString(fieldsJoined)
		b.WriteString(" from datastore ")
		writeQuoted(f.Datastore)
		b.WriteString(" although no declared flow requires it")
	case f.Actor == f.PerformedBy && f.Service != "":
		b.WriteString("flow of non-consented service ")
		writeQuoted(f.Service)
		b.WriteString(" lets actor ")
		writeQuoted(f.Actor)
		b.WriteString(" ")
		b.WriteString(f.Action.String())
		b.WriteString(" ")
		b.WriteString(fieldsJoined)
	case f.Service != "":
		b.WriteString(f.Action.String())
		b.WriteString(" by ")
		writeQuoted(f.PerformedBy)
		b.WriteString(" in service ")
		writeQuoted(f.Service)
		b.WriteString(" exposes ")
		b.WriteString(fieldsJoined)
		b.WriteString(" to non-allowed actor ")
		writeQuoted(f.Actor)
	default:
		b.WriteString(f.Action.String())
		b.WriteString(" by ")
		writeQuoted(f.PerformedBy)
		b.WriteString(" exposes ")
		b.WriteString(fieldsJoined)
		b.WriteString(" to non-allowed actor ")
		writeQuoted(f.Actor)
	}
	b.WriteString("; most sensitive field ")
	writeQuoted(f.DrivingField)
	b.WriteString(" (impact ")
	writeFixed2(f.Impact)
	b.WriteString("/")
	b.WriteString(f.ImpactLevel.String())
	b.WriteString(", likelihood ")
	writeFixed2(f.Likelihood)
	b.WriteString("/")
	b.WriteString(f.LikelihoodLevel.String())
	b.WriteString(") => risk ")
	b.WriteString(f.Risk.String())
	return b.String()
}

// suggestMitigation renders the finding's mitigation advice, built like
// explain with direct writes and byte-identical to the earlier fmt-based
// rendering. Findings only ever name non-allowed actors (σ is zero for
// allowed ones), so no allowed-actor branch is needed here.
func (a *Analyzer) suggestMitigation(f *Finding, rc *renderCache) string {
	var b strings.Builder
	writeQuoted := func(s string) { b.WriteString(rc.quote(s)) }
	switch {
	case f.Datastore != "":
		b.Grow(112 + len(f.Actor) + len(f.Datastore) + len(f.DrivingField))
		b.WriteString("remove or restrict ")
		writeQuoted(f.Actor)
		b.WriteString("'s read access to ")
		b.WriteString(f.Datastore)
		b.WriteString(".")
		b.WriteString(f.DrivingField)
		b.WriteString(" (e.g. accesscontrol.ACL.Restrict), or pseudonymise the field before storage")
	default:
		b.Grow(72 + len(f.Actor))
		b.WriteString("remove actor ")
		writeQuoted(f.Actor)
		b.WriteString(" from the service or reduce the fields disclosed to it")
	}
	return b.String()
}

// Change describes how the assessed risk for one (actor, datastore, field)
// disclosure event moved between two assessments, e.g. before and after an
// access-policy change (case study IV-A).
type Change struct {
	Actor     string
	Datastore string
	Field     string
	Before    Level
	After     Level
}

// String renders the change, e.g.
// "administrator on ehr.diagnosis: medium -> low".
func (c Change) String() string {
	return fmt.Sprintf("%s on %s.%s: %s -> %s", c.Actor, c.Datastore, c.Field, c.Before, c.After)
}

// Compare reports, per (actor, datastore, driving field), the highest risk
// level before and after, for the events present in either assessment.
func Compare(before, after *Assessment) []Change {
	type key struct{ actor, store, field string }
	maxOf := func(a *Assessment) map[key]Level {
		m := make(map[key]Level)
		if a == nil {
			return m
		}
		for _, f := range a.Findings {
			k := key{f.Actor, f.Datastore, f.DrivingField}
			if f.Risk > m[k] {
				m[k] = f.Risk
			}
		}
		return m
	}
	b := maxOf(before)
	aft := maxOf(after)
	keys := make(map[key]bool)
	for k := range b {
		keys[k] = true
	}
	for k := range aft {
		keys[k] = true
	}
	var out []Change
	for k := range keys {
		beforeLevel, afterLevel := b[k], aft[k]
		if beforeLevel == 0 {
			beforeLevel = LevelNone
		}
		if afterLevel == 0 {
			afterLevel = LevelNone
		}
		out = append(out, Change{Actor: k.actor, Datastore: k.store, Field: k.field,
			Before: beforeLevel, After: afterLevel})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Actor != out[j].Actor {
			return out[i].Actor < out[j].Actor
		}
		if out[i].Datastore != out[j].Datastore {
			return out[i].Datastore < out[j].Datastore
		}
		return out[i].Field < out[j].Field
	})
	return out
}
