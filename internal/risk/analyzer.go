package risk

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"privascope/internal/core"
	"privascope/internal/lts"
)

// Finding is one assessed disclosure event: a transition of the privacy LTS
// through which a non-allowed actor identifies (or becomes able to identify)
// personal data the user is sensitive about.
type Finding struct {
	// Transition is the LTS transition the finding refers to.
	Transition lts.Transition
	// Action, Datastore and Fields are copied from the transition label for
	// convenience.
	Action    core.Action
	Datastore string
	Fields    []string
	// Actor is the non-allowed actor put in a position to identify (or who
	// identifies) the sensitive data. The paper attaches the risk to the
	// disclosure event affecting this actor.
	Actor string
	// PerformedBy is the actor performing the transition; for potential
	// reads it equals Actor, for declared flows it may be an allowed actor
	// whose action exposes data to Actor (for example a doctor writing the
	// diagnosis into a store the administrator may read).
	PerformedBy string
	// Potential marks findings on policy-permitted reads that no declared
	// flow performs.
	Potential bool
	// Service is the (non-consented) service the transition belongs to, if
	// any.
	Service string
	// DrivingField is the field whose sensitivity determines the impact.
	DrivingField string
	// Impact is the maximum sensitivity change the transition causes.
	Impact      float64
	ImpactLevel Level
	// Likelihood is the summed probability of the scenarios under which the
	// event occurs; zero for events within consented services.
	Likelihood      float64
	LikelihoodLevel Level
	// Scenarios lists the scenario names contributing to the likelihood.
	Scenarios []string
	// Risk is the combined risk level from the matrix.
	Risk Level
	// Explanation is a human-readable account of the finding.
	Explanation string
	// Mitigation is a suggested change that would remove or reduce the risk.
	Mitigation string
}

// Assessment is the result of analysing one user profile against a privacy
// LTS.
type Assessment struct {
	// Profile is the analysed user profile.
	Profile UserProfile
	// AllowedActors took part in at least one consented service.
	AllowedActors []string
	// NonAllowedActors are every other actor of the model.
	NonAllowedActors []string
	// Findings are the assessed disclosure events, sorted by decreasing risk
	// then impact.
	Findings []Finding
	// OverallRisk is the maximum risk across findings (LevelNone if there
	// are none).
	OverallRisk Level
}

// FindingsFor returns the findings involving the given actor.
func (a *Assessment) FindingsFor(actor string) []Finding {
	var out []Finding
	for _, f := range a.Findings {
		if f.Actor == actor {
			out = append(out, f)
		}
	}
	return out
}

// FindingsAtLeast returns the findings whose risk is at least the given
// level.
func (a *Assessment) FindingsAtLeast(level Level) []Finding {
	var out []Finding
	for _, f := range a.Findings {
		if f.Risk >= level {
			out = append(out, f)
		}
	}
	return out
}

// MaxRiskFor returns the highest risk among findings involving the actor.
func (a *Assessment) MaxRiskFor(actor string) Level {
	max := LevelNone
	for _, f := range a.FindingsFor(actor) {
		if f.Risk > max {
			max = f.Risk
		}
	}
	return max
}

// Analyzer performs unwanted-disclosure risk analysis. It never mutates the
// privacy LTS it analyses, so one generated model can be assessed against
// many user profiles.
type Analyzer struct {
	cfg Config
}

// NewAnalyzer returns an analyzer with the given configuration; zero-value
// fields select the defaults.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Matrix.Validate(); err != nil {
		return nil, err
	}
	for _, s := range cfg.Scenarios {
		if s.Probability < 0 || s.Probability > 1 {
			return nil, fmt.Errorf("risk: scenario %q probability %v outside [0,1]", s.Name, s.Probability)
		}
	}
	return &Analyzer{cfg: cfg}, nil
}

// MustAnalyzer is like NewAnalyzer but panics on error; for fixtures.
func MustAnalyzer(cfg Config) *Analyzer {
	a, err := NewAnalyzer(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Analyze assesses the user profile against the privacy LTS.
func (a *Analyzer) Analyze(p *core.PrivacyLTS, profile UserProfile) (*Assessment, error) {
	return a.AnalyzeContext(context.Background(), p, profile)
}

// AnalyzeContext is Analyze with cancellation: ctx is polled while walking
// the model's transitions, so analyses of very large models abort promptly
// with ctx.Err() when the caller cancels or the deadline passes.
func (a *Analyzer) AnalyzeContext(ctx context.Context, p *core.PrivacyLTS, profile UserProfile) (*Assessment, error) {
	if p == nil {
		return nil, errors.New("risk: privacy LTS must not be nil")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	for _, svc := range profile.ConsentedServices {
		if _, ok := p.Model.Service(svc); !ok {
			return nil, fmt.Errorf("risk: profile consents to unknown service %q", svc)
		}
	}

	allowed := p.Model.ServiceActors(profile.ConsentedServices...)
	allowedSet := make(map[string]bool, len(allowed))
	for _, actor := range allowed {
		allowedSet[actor] = true
	}
	var nonAllowed []string
	for _, actor := range p.Model.ActorIDs() {
		if !allowedSet[actor] {
			nonAllowed = append(nonAllowed, actor)
		}
	}
	sort.Strings(nonAllowed)

	assessment := &Assessment{
		Profile:          profile,
		AllowedActors:    allowed,
		NonAllowedActors: nonAllowed,
		OverallRisk:      LevelNone,
	}

	sigma := func(field, actor string) float64 {
		if allowedSet[actor] {
			return 0
		}
		return profile.Sensitivity(field)
	}

	for i, tr := range p.Graph.Transitions() {
		// Poll between transitions, spaced out so the atomic load never
		// shows up on profiles of small models.
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		label := core.LabelOf(tr)
		if label == nil {
			continue
		}
		findings := a.assessTransition(p, profile, tr, label, sigma, allowedSet)
		for _, finding := range findings {
			assessment.Findings = append(assessment.Findings, finding)
			if finding.Risk > assessment.OverallRisk {
				assessment.OverallRisk = finding.Risk
			}
		}
	}

	sort.SliceStable(assessment.Findings, func(i, j int) bool {
		fi, fj := assessment.Findings[i], assessment.Findings[j]
		if fi.Risk != fj.Risk {
			return fi.Risk > fj.Risk
		}
		if fi.Impact != fj.Impact {
			return fi.Impact > fj.Impact
		}
		return fi.Actor < fj.Actor
	})
	return assessment, nil
}

// assessTransition computes impact, likelihood and risk for one transition.
// A separate finding is produced for every non-allowed actor the transition
// puts in a position to identify sensitive data.
func (a *Analyzer) assessTransition(p *core.PrivacyLTS, profile UserProfile, tr lts.Transition,
	label *core.TransitionLabel, sigma func(field, actor string) float64, allowedSet map[string]bool) []Finding {

	// Impact per non-allowed actor: the maximum sensitivity among the state
	// variables the transition newly sets for that actor, measured with
	// σ(d, a) so variables of allowed actors contribute nothing. The change
	// is measured relative to the source state; because variables only
	// accumulate along paths from the absolute privacy state, this equals the
	// paper's "change relative to the absolute privacy state" for the
	// variables this transition introduces.
	type exposure struct {
		impact float64
		// driving is the field whose sensitivity determines the impact.
		driving string
		// identified is true when the transition sets a "has identified"
		// variable for the actor, i.e. the actor actually receives the data
		// through this transition rather than merely becoming able to read
		// it later.
		identified bool
	}
	exposures := make(map[string]exposure)
	for _, v := range p.ChangeOf(tr) {
		s := sigma(v.Field, v.Actor)
		if s <= 0 {
			continue
		}
		cur := exposures[v.Actor]
		if s > cur.impact {
			cur.impact = s
			cur.driving = v.Field
		}
		if v.Kind == core.HasIdentified {
			cur.identified = true
		}
		exposures[v.Actor] = cur
	}
	if len(exposures) == 0 {
		return nil
	}
	actors := make([]string, 0, len(exposures))
	for actor := range exposures {
		actors = append(actors, actor)
	}
	sort.Strings(actors)

	// Likelihood: which scenarios can make the disclosure to this actor
	// happen?
	consented := label.Service != "" && profile.Consented(label.Service)
	var findings []Finding
	for _, actor := range actors {
		exp := exposures[actor]
		likelihood := 0.0
		var scenarioNames []string
		switch {
		case !label.Potential && exp.identified && !consented:
			// The actor actually receives the data through a declared flow of
			// a service the user did not consent to: the
			// non-consented-service scenario applies.
			for _, s := range a.cfg.Scenarios {
				if s.AppliesToService {
					likelihood += s.Probability
					scenarioNames = append(scenarioNames, s.Name)
				}
			}
		default:
			// Either a policy-permitted read outside any declared flow
			// (potential read) or a flow that merely makes the data readable
			// by a non-allowed actor: the actual disclosure happens through
			// the accidental-access or maintenance-exposure scenarios.
			for _, s := range a.cfg.Scenarios {
				if s.AppliesToService {
					continue
				}
				likelihood += s.Probability
				scenarioNames = append(scenarioNames, s.Name)
			}
		}
		if likelihood > 1 {
			likelihood = 1
		}

		impactLevel := a.cfg.Matrix.ImpactLevel(exp.impact)
		likelihoodLevel := a.cfg.Matrix.LikelihoodLevel(likelihood)
		riskLevel := a.cfg.Matrix.Risk(impactLevel, likelihoodLevel)

		finding := Finding{
			Transition:      tr,
			Action:          label.Action,
			Actor:           actor,
			PerformedBy:     label.Actor,
			Datastore:       label.Datastore,
			Fields:          label.FieldSet(),
			Potential:       label.Potential,
			Service:         label.Service,
			DrivingField:    exp.driving,
			Impact:          exp.impact,
			ImpactLevel:     impactLevel,
			Likelihood:      likelihood,
			LikelihoodLevel: likelihoodLevel,
			Scenarios:       scenarioNames,
			Risk:            riskLevel,
		}
		finding.Explanation = a.explain(finding)
		finding.Mitigation = a.suggestMitigation(finding, allowedSet)
		findings = append(findings, finding)
	}
	return findings
}

func (a *Analyzer) explain(f Finding) string {
	var b strings.Builder
	switch {
	case f.Potential:
		fmt.Fprintf(&b, "non-allowed actor %q may %s %s from datastore %q although no declared flow requires it",
			f.Actor, f.Action, strings.Join(f.Fields, ", "), f.Datastore)
	case f.Actor == f.PerformedBy && f.Service != "":
		fmt.Fprintf(&b, "flow of non-consented service %q lets actor %q %s %s",
			f.Service, f.Actor, f.Action, strings.Join(f.Fields, ", "))
	case f.Service != "":
		fmt.Fprintf(&b, "%s by %q in service %q exposes %s to non-allowed actor %q",
			f.Action, f.PerformedBy, f.Service, strings.Join(f.Fields, ", "), f.Actor)
	default:
		fmt.Fprintf(&b, "%s by %q exposes %s to non-allowed actor %q",
			f.Action, f.PerformedBy, strings.Join(f.Fields, ", "), f.Actor)
	}
	fmt.Fprintf(&b, "; most sensitive field %q (impact %.2f/%s, likelihood %.2f/%s) => risk %s",
		f.DrivingField, f.Impact, f.ImpactLevel, f.Likelihood, f.LikelihoodLevel, f.Risk)
	return b.String()
}

func (a *Analyzer) suggestMitigation(f Finding, allowedSet map[string]bool) string {
	if allowedSet[f.Actor] {
		return fmt.Sprintf("review whether field %q needs to be visible to %q at all", f.DrivingField, f.Actor)
	}
	if f.Datastore != "" {
		return fmt.Sprintf("remove or restrict %q's read access to %s.%s (e.g. accesscontrol.ACL.Restrict), or pseudonymise the field before storage",
			f.Actor, f.Datastore, f.DrivingField)
	}
	return fmt.Sprintf("remove actor %q from the service or reduce the fields disclosed to it", f.Actor)
}

// Change describes how the assessed risk for one (actor, datastore, field)
// disclosure event moved between two assessments, e.g. before and after an
// access-policy change (case study IV-A).
type Change struct {
	Actor     string
	Datastore string
	Field     string
	Before    Level
	After     Level
}

// String renders the change, e.g.
// "administrator on ehr.diagnosis: medium -> low".
func (c Change) String() string {
	return fmt.Sprintf("%s on %s.%s: %s -> %s", c.Actor, c.Datastore, c.Field, c.Before, c.After)
}

// Compare reports, per (actor, datastore, driving field), the highest risk
// level before and after, for the events present in either assessment.
func Compare(before, after *Assessment) []Change {
	type key struct{ actor, store, field string }
	maxOf := func(a *Assessment) map[key]Level {
		m := make(map[key]Level)
		if a == nil {
			return m
		}
		for _, f := range a.Findings {
			k := key{f.Actor, f.Datastore, f.DrivingField}
			if f.Risk > m[k] {
				m[k] = f.Risk
			}
		}
		return m
	}
	b := maxOf(before)
	aft := maxOf(after)
	keys := make(map[key]bool)
	for k := range b {
		keys[k] = true
	}
	for k := range aft {
		keys[k] = true
	}
	var out []Change
	for k := range keys {
		beforeLevel, afterLevel := b[k], aft[k]
		if beforeLevel == 0 {
			beforeLevel = LevelNone
		}
		if afterLevel == 0 {
			afterLevel = LevelNone
		}
		out = append(out, Change{Actor: k.actor, Datastore: k.store, Field: k.field,
			Before: beforeLevel, After: afterLevel})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Actor != out[j].Actor {
			return out[i].Actor < out[j].Actor
		}
		if out[i].Datastore != out[j].Datastore {
			return out[i].Datastore < out[j].Datastore
		}
		return out[i].Field < out[j].Field
	})
	return out
}
