package risk_test

import (
	"reflect"
	"sync"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/risk"
)

func surgeryLTS(t *testing.T) *core.PrivacyLTS {
	t.Helper()
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return p
}

func TestFingerprintIgnoresIDAndOrdering(t *testing.T) {
	a := risk.UserProfile{ID: "alice", ConsentedServices: []string{"s1", "s2"},
		Sensitivities: map[string]float64{"x": 0.5, "y": 0.9}, DefaultSensitivity: 0.25}
	b := risk.UserProfile{ID: "bob", ConsentedServices: []string{"s2", "s1"},
		Sensitivities: map[string]float64{"y": 0.9, "x": 0.5}, DefaultSensitivity: 0.25}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ for same-shaped profiles:\n%q\n%q", a.Fingerprint(), b.Fingerprint())
	}
	// Any shape component changing must change the fingerprint.
	variants := []risk.UserProfile{
		{ID: "alice", ConsentedServices: []string{"s1"}, Sensitivities: a.Sensitivities, DefaultSensitivity: 0.25},
		{ID: "alice", ConsentedServices: a.ConsentedServices, Sensitivities: map[string]float64{"x": 0.5}, DefaultSensitivity: 0.25},
		{ID: "alice", ConsentedServices: a.ConsentedServices, Sensitivities: a.Sensitivities, DefaultSensitivity: 0.3},
		{ID: "alice", ConsentedServices: a.ConsentedServices,
			Sensitivities: map[string]float64{"x": 0.5, "y": 0.91}, DefaultSensitivity: 0.25},
	}
	for i, v := range variants {
		if v.Fingerprint() == a.Fingerprint() {
			t.Errorf("variant %d has the same fingerprint as the base profile", i)
		}
	}
}

func TestAssessmentCacheHitAndMiss(t *testing.T) {
	p := surgeryLTS(t)
	cache, err := risk.NewAssessmentCache(nil)
	if err != nil {
		t.Fatal(err)
	}

	first := casestudy.PatientProfile()
	a1, err := cache.Analyze(p, first)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Hits(), cache.Misses(); hits != 0 || misses != 1 {
		t.Errorf("after first analysis: hits=%d misses=%d, want 0/1", hits, misses)
	}

	// Same shape, different user: a hit sharing the findings slice, carrying
	// the caller's profile.
	second := casestudy.PatientProfile()
	second.ID = "patient-2"
	a2, err := cache.Analyze(p, second)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Hits(), cache.Misses(); hits != 1 || misses != 1 {
		t.Errorf("after cache hit: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if a2.Profile.ID != "patient-2" {
		t.Errorf("cached assessment carries profile %q, want the caller's", a2.Profile.ID)
	}
	if len(a1.Findings) == 0 || &a1.Findings[0] != &a2.Findings[0] {
		t.Error("same-shaped users should share one findings slice")
	}
	if !reflect.DeepEqual(a1.OverallRisk, a2.OverallRisk) {
		t.Error("shared assessments disagree on overall risk")
	}

	// A different shape misses.
	insensitive := casestudy.PatientProfile()
	insensitive.ID = "patient-3"
	insensitive.DefaultSensitivity = 0
	insensitive.Sensitivities = nil
	if _, err := cache.Analyze(p, insensitive); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Hits(), cache.Misses(); hits != 1 || misses != 2 {
		t.Errorf("after new shape: hits=%d misses=%d, want 1/2", hits, misses)
	}

	// The same shape against a different model instance misses: the cache is
	// keyed by model identity, not shape alone.
	other := surgeryLTS(t)
	if _, err := cache.Analyze(other, first); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Hits(), cache.Misses(); hits != 1 || misses != 3 {
		t.Errorf("after second model: hits=%d misses=%d, want 1/3", hits, misses)
	}
	if cache.Size() != 3 {
		t.Errorf("Size() = %d, want 3", cache.Size())
	}
}

func TestAssessmentCacheSharedResultMatchesDirectAnalysis(t *testing.T) {
	p := surgeryLTS(t)
	cache, err := risk.NewAssessmentCache(nil)
	if err != nil {
		t.Fatal(err)
	}
	profile := casestudy.PatientProfile()
	if _, err := cache.Analyze(p, profile); err != nil {
		t.Fatal(err)
	}
	profile2 := casestudy.PatientProfile()
	profile2.ID = "patient-2"
	cached, err := cache.Analyze(p, profile2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cache.Analyzer().Analyze(p, profile2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached.Findings, direct.Findings) {
		t.Error("cached findings differ from a direct analysis of the same profile")
	}
	if cached.OverallRisk != direct.OverallRisk ||
		!reflect.DeepEqual(cached.AllowedActors, direct.AllowedActors) ||
		!reflect.DeepEqual(cached.NonAllowedActors, direct.NonAllowedActors) {
		t.Error("cached assessment metadata differs from a direct analysis")
	}
}

func TestAssessmentCacheErrorsNotCached(t *testing.T) {
	p := surgeryLTS(t)
	cache, err := risk.NewAssessmentCache(nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := risk.UserProfile{ID: "u", ConsentedServices: []string{"no-such-service"}}
	if _, err := cache.Analyze(p, bad); err == nil {
		t.Fatal("unknown consented service accepted")
	}
	// Failed analyses are forgotten (so one caller's cancellation can never
	// poison the cache): a same-shaped retry recomputes and fails again.
	bad.ID = "v"
	if _, err := cache.Analyze(p, bad); err == nil {
		t.Fatal("error not returned for same-shaped profile")
	}
	if cache.Size() != 0 {
		t.Errorf("failed analysis left %d cache entries, want 0", cache.Size())
	}
	if hits, misses := cache.Hits(), cache.Misses(); hits != 0 || misses != 2 {
		t.Errorf("error path: hits=%d misses=%d, want 0/2", hits, misses)
	}
}

func TestAssessmentCacheConcurrentSingleComputation(t *testing.T) {
	p := surgeryLTS(t)
	cache, err := risk.NewAssessmentCache(nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]*risk.Assessment, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			profile := casestudy.PatientProfile()
			a, err := cache.Analyze(p, profile)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	if cache.Misses() != 1 {
		t.Errorf("concurrent analyses computed %d times, want 1", cache.Misses())
	}
	if cache.Hits() != goroutines-1 {
		t.Errorf("hits = %d, want %d", cache.Hits(), goroutines-1)
	}
	for i := 1; i < goroutines; i++ {
		if results[i] == nil || len(results[i].Findings) != len(results[0].Findings) {
			t.Fatalf("goroutine %d saw a different assessment", i)
		}
	}
}

func TestNewAssessmentCacheDefaultAnalyzer(t *testing.T) {
	cache, err := risk.NewAssessmentCache(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Analyzer() == nil {
		t.Error("default analyzer missing")
	}
}
