package risk

import (
	"fmt"
	"testing"

	"privascope/internal/accesscontrol"
)

func TestAnalyzePopulation(t *testing.T) {
	p := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	a := MustAnalyzer(Config{})

	sensitive := patientProfile()
	indifferent := UserProfile{ID: "easygoing", ConsentedServices: []string{"care", "research"}}
	noConsent := patientProfile()
	noConsent.ID = "wary"
	noConsent.ConsentedServices = nil

	population, err := a.AnalyzePopulation(p, []UserProfile{sensitive, indifferent, noConsent})
	if err != nil {
		t.Fatalf("AnalyzePopulation: %v", err)
	}
	if len(population.Users) != 3 {
		t.Fatalf("users = %d", len(population.Users))
	}
	if population.Users[0].UserID != "patient-1" || population.Users[1].UserID != "easygoing" {
		t.Errorf("user order not preserved: %+v", population.Users)
	}
	if population.Users[1].OverallRisk != LevelNone || population.Users[1].Findings != 0 {
		t.Errorf("indifferent user should have no findings: %+v", population.Users[1])
	}
	if population.Users[0].OverallRisk < LevelMedium {
		t.Errorf("sensitive user risk = %v", population.Users[0].OverallRisk)
	}
	if population.Users[0].WorstActor == "" || population.Users[0].HighestImpactField == "" {
		t.Errorf("top finding not summarised: %+v", population.Users[0])
	}
	if population.UsersAtRisk < 2 {
		t.Errorf("UsersAtRisk = %d, want at least 2", population.UsersAtRisk)
	}
	total := 0
	for _, n := range population.Distribution {
		total += n
	}
	if total != 3 {
		t.Errorf("distribution covers %d users, want 3", total)
	}
	ranked := population.WorstActorsRanked()
	if len(ranked) == 0 {
		t.Fatal("no worst actors ranked")
	}
	for i := 1; i < len(ranked); i++ {
		if population.WorstActors[ranked[i-1]] < population.WorstActors[ranked[i]] {
			t.Errorf("ranking not sorted: %v", ranked)
		}
	}
}

func TestAnalyzePopulationErrors(t *testing.T) {
	p := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	a := MustAnalyzer(Config{})
	if _, err := a.AnalyzePopulation(nil, []UserProfile{patientProfile()}); err == nil {
		t.Error("nil LTS accepted")
	}
	if _, err := a.AnalyzePopulation(p, nil); err == nil {
		t.Error("empty population accepted")
	}
	bad := patientProfile()
	bad.Sensitivities["x"] = 7
	if _, err := a.AnalyzePopulation(p, []UserProfile{patientProfile(), bad}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestAnalyzePopulationDeduplicatesShapes(t *testing.T) {
	p := generate(t, clinicModel(t, []string{accesscontrol.AllFields}))
	a := MustAnalyzer(Config{})

	// Three shapes, many users: the analysis must run once per shape and the
	// per-user entries must match an uncached run exactly.
	shapes := []UserProfile{
		patientProfile(),
		{ConsentedServices: []string{"care", "research"}},
		{ConsentedServices: nil, DefaultSensitivity: 0.9},
	}
	var population []UserProfile
	for i := 0; i < 60; i++ {
		profile := shapes[i%len(shapes)]
		profile.ID = fmt.Sprintf("user-%03d", i)
		population = append(population, profile)
	}
	got, err := a.AnalyzePopulation(p, population)
	if err != nil {
		t.Fatalf("AnalyzePopulation: %v", err)
	}
	if got.DistinctShapes != len(shapes) {
		t.Errorf("DistinctShapes = %d, want %d", got.DistinctShapes, len(shapes))
	}
	if len(got.Users) != len(population) {
		t.Fatalf("users = %d, want %d", len(got.Users), len(population))
	}
	for i, u := range got.Users {
		if u.UserID != population[i].ID {
			t.Fatalf("user %d = %q, want %q (input order lost)", i, u.UserID, population[i].ID)
		}
		// Same-shaped users must agree on every aggregate.
		ref := got.Users[i%len(shapes)]
		if u.OverallRisk != ref.OverallRisk || u.Findings != ref.Findings ||
			u.WorstActor != ref.WorstActor || u.HighestImpactField != ref.HighestImpactField {
			t.Errorf("user %d diverges from same-shaped user: %+v vs %+v", i, u, ref)
		}
	}
}
