package risk

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"privascope/internal/core"
	"privascope/internal/flight"
)

// Fingerprint returns a canonical encoding of the profile's risk-relevant
// shape: the sorted consented services, the sorted per-field sensitivities
// and the default sensitivity. The user ID is deliberately excluded — two
// users with the same fingerprint receive identical assessments against the
// same privacy model, which is what lets AssessmentCache share one analysis
// across an arbitrarily large population of same-shaped users.
func (u UserProfile) Fingerprint() string {
	services := append([]string(nil), u.ConsentedServices...)
	sort.Strings(services)
	fields := make([]string, 0, len(u.Sensitivities))
	for f := range u.Sensitivities {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	// Every name is length-prefixed so the encoding is injective: no choice
	// of service or field names (which may contain any byte) can make two
	// different shapes render identically. Floats are canonical via
	// FormatFloat and terminated by ';', which no float contains.
	var b strings.Builder
	writeName := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	b.WriteString("svc")
	for _, s := range services {
		b.WriteByte(';')
		writeName(s)
	}
	b.WriteString("|def:")
	b.WriteString(strconv.FormatFloat(u.DefaultSensitivity, 'g', -1, 64))
	b.WriteString("|sens")
	for _, f := range fields {
		b.WriteByte(';')
		writeName(f)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(u.Sensitivities[f], 'g', -1, 64))
	}
	return b.String()
}

// cacheKey identifies one cached analysis: the model instance (by identity —
// a PrivacyLTS is immutable once generated) and the profile fingerprint.
type cacheKey struct {
	model       *core.PrivacyLTS
	fingerprint string
}

// AssessmentCache deduplicates risk assessments across users with identical
// profile shapes (Fingerprint). The first analysis of each (model, shape)
// pair runs the full Analyzer; every subsequent request returns the shared
// result in O(1), with only the Profile swapped for the caller's. It is safe
// for concurrent use: concurrent first requests for a shape are
// single-flighted (one analysis, everyone shares the result), waiters honour
// their own context, and an analysis aborted by cancellation is forgotten
// rather than cached.
//
// Findings of a cached assessment are shared between callers and must be
// treated as immutable, which matches the Analyzer contract (analyses never
// mutate their outputs after returning them).
type AssessmentCache struct {
	analyzer *Analyzer
	entries  flight.Group[cacheKey, *Assessment]
}

// NewAssessmentCache wraps the analyzer with a fingerprint-keyed cache.
// A nil analyzer selects the default configuration.
func NewAssessmentCache(analyzer *Analyzer) (*AssessmentCache, error) {
	if analyzer == nil {
		var err error
		analyzer, err = NewAnalyzer(Config{})
		if err != nil {
			return nil, err
		}
	}
	return &AssessmentCache{analyzer: analyzer}, nil
}

// Analyzer returns the underlying analyzer.
func (c *AssessmentCache) Analyzer() *Analyzer { return c.analyzer }

// Analyze returns the assessment for the profile, computing it at most once
// per (model, profile shape). The returned Assessment carries the caller's
// profile; its Findings slice is shared with every other user of the same
// shape.
func (c *AssessmentCache) Analyze(p *core.PrivacyLTS, profile UserProfile) (*Assessment, error) {
	return c.AnalyzeContext(context.Background(), p, profile)
}

// AnalyzeContext is Analyze with cancellation: the analysis polls ctx while
// walking the model's transitions, a caller blocked on another caller's
// in-flight analysis of the same shape returns its own ctx.Err() when ctx is
// done, and a cancelled analysis is not cached.
func (c *AssessmentCache) AnalyzeContext(ctx context.Context, p *core.PrivacyLTS, profile UserProfile) (*Assessment, error) {
	return c.AnalyzeFingerprinted(ctx, p, profile, profile.Fingerprint())
}

// AnalyzeFingerprinted is AnalyzeContext for callers that already hold the
// profile's Fingerprint, sparing its recomputation on per-user hot loops
// (population scans fingerprint each profile for their DistinctShapes
// accounting anyway). fingerprint must equal profile.Fingerprint().
func (c *AssessmentCache) AnalyzeFingerprinted(ctx context.Context, p *core.PrivacyLTS, profile UserProfile, fingerprint string) (*Assessment, error) {
	key := cacheKey{model: p, fingerprint: fingerprint}
	shared, err := c.entries.Do(ctx, key, func(ctx context.Context) (*Assessment, error) {
		return c.analyzer.AnalyzeContext(ctx, p, profile)
	})
	if err != nil {
		return nil, err
	}
	assessment := *shared
	assessment.Profile = profile
	return &assessment, nil
}

// Hits returns how many Analyze calls were served from the cache.
func (c *AssessmentCache) Hits() int64 { return c.entries.Hits() }

// Misses returns how many Analyze calls computed a fresh assessment.
func (c *AssessmentCache) Misses() int64 { return c.entries.Misses() }

// Size returns the number of distinct (model, shape) pairs cached.
func (c *AssessmentCache) Size() int { return c.entries.Size() }
