package risk

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// referenceAnalyze is the pre-compiled-view AnalyzeContext, kept verbatim as
// the behavioural baseline: it walks Graph.Transitions(), re-derives the
// per-transition change through the string-keyed vector maps (ChangeOf) and
// builds a per-transition exposure map keyed by actor name. The rewritten
// analyzer must produce byte-identical assessments.
func referenceAnalyze(a *Analyzer, ctx context.Context, p *core.PrivacyLTS, profile UserProfile) (*Assessment, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	for _, svc := range profile.ConsentedServices {
		if _, ok := p.Model.Service(svc); !ok {
			return nil, fmt.Errorf("risk: profile consents to unknown service %q", svc)
		}
	}

	allowed := p.Model.ServiceActors(profile.ConsentedServices...)
	allowedSet := make(map[string]bool, len(allowed))
	for _, actor := range allowed {
		allowedSet[actor] = true
	}
	var nonAllowed []string
	for _, actor := range p.Model.ActorIDs() {
		if !allowedSet[actor] {
			nonAllowed = append(nonAllowed, actor)
		}
	}
	sort.Strings(nonAllowed)

	assessment := &Assessment{
		Profile:          profile,
		AllowedActors:    allowed,
		NonAllowedActors: nonAllowed,
		OverallRisk:      LevelNone,
	}

	sigma := func(field, actor string) float64 {
		if allowedSet[actor] {
			return 0
		}
		return profile.Sensitivity(field)
	}

	for i, tr := range p.Graph.Transitions() {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		label := core.LabelOf(tr)
		if label == nil {
			continue
		}
		findings := referenceAssessTransition(a, p, profile, tr, label, sigma, allowedSet)
		for _, finding := range findings {
			assessment.Findings = append(assessment.Findings, finding)
			if finding.Risk > assessment.OverallRisk {
				assessment.OverallRisk = finding.Risk
			}
		}
	}

	sort.SliceStable(assessment.Findings, func(i, j int) bool {
		fi, fj := assessment.Findings[i], assessment.Findings[j]
		if fi.Risk != fj.Risk {
			return fi.Risk > fj.Risk
		}
		if fi.Impact != fj.Impact {
			return fi.Impact > fj.Impact
		}
		return fi.Actor < fj.Actor
	})
	return assessment, nil
}

// referenceAssessTransition is the retired per-transition assessment.
func referenceAssessTransition(a *Analyzer, p *core.PrivacyLTS, profile UserProfile, tr lts.Transition,
	label *core.TransitionLabel, sigma func(field, actor string) float64, allowedSet map[string]bool) []Finding {

	type exposure struct {
		impact     float64
		driving    string
		identified bool
	}
	exposures := make(map[string]exposure)
	for _, v := range p.ChangeOf(tr) {
		s := sigma(v.Field, v.Actor)
		if s <= 0 {
			continue
		}
		cur := exposures[v.Actor]
		if s > cur.impact {
			cur.impact = s
			cur.driving = v.Field
		}
		if v.Kind == core.HasIdentified {
			cur.identified = true
		}
		exposures[v.Actor] = cur
	}
	if len(exposures) == 0 {
		return nil
	}
	actors := make([]string, 0, len(exposures))
	for actor := range exposures {
		actors = append(actors, actor)
	}
	sort.Strings(actors)

	consented := label.Service != "" && profile.Consented(label.Service)
	var findings []Finding
	for _, actor := range actors {
		exp := exposures[actor]
		likelihood := 0.0
		var scenarioNames []string
		switch {
		case !label.Potential && exp.identified && !consented:
			for _, s := range a.cfg.Scenarios {
				if s.AppliesToService {
					likelihood += s.Probability
					scenarioNames = append(scenarioNames, s.Name)
				}
			}
		default:
			for _, s := range a.cfg.Scenarios {
				if s.AppliesToService {
					continue
				}
				likelihood += s.Probability
				scenarioNames = append(scenarioNames, s.Name)
			}
		}
		if likelihood > 1 {
			likelihood = 1
		}

		impactLevel := a.cfg.Matrix.ImpactLevel(exp.impact)
		likelihoodLevel := a.cfg.Matrix.LikelihoodLevel(likelihood)
		riskLevel := a.cfg.Matrix.Risk(impactLevel, likelihoodLevel)

		finding := Finding{
			Transition:      tr,
			Action:          label.Action,
			Actor:           actor,
			PerformedBy:     label.Actor,
			Datastore:       label.Datastore,
			Fields:          label.FieldSet(),
			Potential:       label.Potential,
			Service:         label.Service,
			DrivingField:    exp.driving,
			Impact:          exp.impact,
			ImpactLevel:     impactLevel,
			Likelihood:      likelihood,
			LikelihoodLevel: likelihoodLevel,
			Scenarios:       scenarioNames,
			Risk:            riskLevel,
		}
		finding.Explanation = referenceExplain(finding)
		finding.Mitigation = referenceSuggestMitigation(finding, allowedSet)
		findings = append(findings, finding)
	}
	return findings
}

// referenceExplain is the retired fmt-based explanation rendering; the
// Builder-based rewrite must reproduce it byte for byte.
func referenceExplain(f Finding) string {
	var b strings.Builder
	switch {
	case f.Potential:
		fmt.Fprintf(&b, "non-allowed actor %q may %s %s from datastore %q although no declared flow requires it",
			f.Actor, f.Action, strings.Join(f.Fields, ", "), f.Datastore)
	case f.Actor == f.PerformedBy && f.Service != "":
		fmt.Fprintf(&b, "flow of non-consented service %q lets actor %q %s %s",
			f.Service, f.Actor, f.Action, strings.Join(f.Fields, ", "))
	case f.Service != "":
		fmt.Fprintf(&b, "%s by %q in service %q exposes %s to non-allowed actor %q",
			f.Action, f.PerformedBy, f.Service, strings.Join(f.Fields, ", "), f.Actor)
	default:
		fmt.Fprintf(&b, "%s by %q exposes %s to non-allowed actor %q",
			f.Action, f.PerformedBy, strings.Join(f.Fields, ", "), f.Actor)
	}
	fmt.Fprintf(&b, "; most sensitive field %q (impact %.2f/%s, likelihood %.2f/%s) => risk %s",
		f.DrivingField, f.Impact, f.ImpactLevel, f.Likelihood, f.LikelihoodLevel, f.Risk)
	return b.String()
}

// referenceSuggestMitigation is the retired fmt-based mitigation rendering.
func referenceSuggestMitigation(f Finding, allowedSet map[string]bool) string {
	if allowedSet[f.Actor] {
		return fmt.Sprintf("review whether field %q needs to be visible to %q at all", f.DrivingField, f.Actor)
	}
	if f.Datastore != "" {
		return fmt.Sprintf("remove or restrict %q's read access to %s.%s (e.g. accesscontrol.ACL.Restrict), or pseudonymise the field before storage",
			f.Actor, f.Datastore, f.DrivingField)
	}
	return fmt.Sprintf("remove actor %q from the service or reduce the fields disclosed to it", f.Actor)
}

// surgeryModel rebuilds the doctors'-surgery case-study model of the paper's
// Fig. 1 (mirroring internal/casestudy, which cannot be imported here without
// a cycle) so the analyzer is exercised and benchmarked on the exact model
// the evaluation uses.
func surgeryModel() *dataflow.Model {
	rw := []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}
	r := []accesscontrol.Permission{accesscontrol.PermissionRead}
	rwd := []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite, accesscontrol.PermissionDelete}
	all := []string{accesscontrol.AllFields}
	policy := accesscontrol.MustACL(
		accesscontrol.Grant{Actor: "receptionist", Datastore: "appointments", Fields: all, Permissions: rw},
		accesscontrol.Grant{Actor: "doctor", Datastore: "appointments", Fields: all, Permissions: r},
		accesscontrol.Grant{Actor: "doctor", Datastore: "ehr", Fields: all, Permissions: rw},
		accesscontrol.Grant{Actor: "doctor", Datastore: "anon_ehr", Fields: all, Permissions: rw},
		accesscontrol.Grant{Actor: "nurse", Datastore: "ehr", Fields: []string{"name", "treatment"}, Permissions: r},
		accesscontrol.Grant{Actor: "administrator", Datastore: "appointments", Fields: all, Permissions: rwd},
		accesscontrol.Grant{Actor: "administrator", Datastore: "ehr", Fields: all, Permissions: rwd},
		accesscontrol.Grant{Actor: "administrator", Datastore: "anon_ehr", Fields: all,
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionDelete}},
		accesscontrol.Grant{Actor: "researcher", Datastore: "anon_ehr", Fields: all, Permissions: r},
	)

	appointmentsSchema := schema.MustSchema("appointments",
		schema.Field{Name: "name", Category: schema.CategoryIdentifier},
		schema.Field{Name: "date_of_birth", Category: schema.CategoryQuasiIdentifier},
		schema.Field{Name: "appointment", Category: schema.CategoryStandard},
	)
	ehrSchema := schema.MustSchema("ehr",
		schema.Field{Name: "name", Category: schema.CategoryIdentifier},
		schema.Field{Name: "date_of_birth", Category: schema.CategoryQuasiIdentifier},
		schema.Field{Name: "medical_issues", Category: schema.CategorySensitive},
		schema.Field{Name: "diagnosis", Category: schema.CategorySensitive},
		schema.Field{Name: "treatment", Category: schema.CategorySensitive},
	)
	anonEHRSchema := schema.MustSchema("anon_ehr",
		schema.Field{Name: schema.AnonName("date_of_birth"), Category: schema.CategoryQuasiIdentifier, Pseudonymised: true},
		schema.Field{Name: schema.AnonName("medical_issues"), Category: schema.CategorySensitive, Pseudonymised: true},
		schema.Field{Name: schema.AnonName("diagnosis"), Category: schema.CategorySensitive, Pseudonymised: true},
		schema.Field{Name: schema.AnonName("treatment"), Category: schema.CategorySensitive, Pseudonymised: true},
	)

	b := dataflow.NewBuilder("doctors-surgery", dataflow.Actor{ID: "patient", Name: "Patient"})
	b.AddActors(
		dataflow.Actor{ID: "receptionist", Name: "Receptionist"},
		dataflow.Actor{ID: "doctor", Name: "Doctor"},
		dataflow.Actor{ID: "nurse", Name: "Nurse"},
		dataflow.Actor{ID: "administrator", Name: "Administrator"},
		dataflow.Actor{ID: "researcher", Name: "Researcher"},
	)
	b.AddDatastore(schema.Datastore{ID: "appointments", Name: "Appointments", Schema: appointmentsSchema})
	b.AddDatastore(schema.Datastore{ID: "ehr", Name: "Electronic Health Records", Schema: ehrSchema})
	b.AddDatastore(schema.Datastore{ID: "anon_ehr", Name: "Anonymised EHR", Schema: anonEHRSchema, Anonymised: true})
	b.AddService(dataflow.Service{ID: "medical-service", Name: "Medical Service"})
	b.AddService(dataflow.Service{ID: "medical-research-service", Name: "Medical Research Service"})

	b.Flow("medical-service", "patient", "receptionist", []string{"name", "date_of_birth"}, "book appointment")
	b.AuthoredFlow("medical-service", "receptionist", "appointments",
		[]string{"name", "date_of_birth", "appointment"}, []string{"appointment"}, "schedule appointment")
	b.Flow("medical-service", "appointments", "doctor",
		[]string{"name", "date_of_birth", "appointment"}, "prepare consultation")
	b.Flow("medical-service", "patient", "doctor", []string{"medical_issues"}, "consultation")
	b.AuthoredFlow("medical-service", "doctor", "ehr",
		[]string{"name", "date_of_birth", "medical_issues", "diagnosis", "treatment"},
		[]string{"diagnosis", "treatment"}, "record consultation")
	b.Flow("medical-service", "ehr", "nurse", []string{"name", "treatment"}, "administer treatment")

	b.Flow("medical-research-service", "ehr", "doctor",
		[]string{"date_of_birth", "medical_issues", "diagnosis", "treatment"}, "prepare research extract")
	b.Flow("medical-research-service", "doctor", "anon_ehr",
		[]string{"date_of_birth", "medical_issues", "diagnosis", "treatment"}, "pseudonymise research data")
	b.Flow("medical-research-service", "anon_ehr", "researcher",
		[]string{schema.AnonName("date_of_birth"), schema.AnonName("medical_issues"),
			schema.AnonName("diagnosis"), schema.AnonName("treatment")}, "medical research")

	b.WithPolicy(policy)
	return b.MustBuild()
}

// surgeryProfiles covers the assessment space: the case-study patient shape,
// no consent, full consent, default-only sensitivities and an all-zero
// profile.
func surgeryProfiles() []UserProfile {
	return []UserProfile{
		{
			ID:                "patient-1",
			ConsentedServices: []string{"medical-service"},
			Sensitivities: map[string]float64{
				"diagnosis":                       SensitivityHigh,
				"medical_issues":                  SensitivityMedium,
				"treatment":                       SensitivityMedium,
				schema.AnonName("diagnosis"):      SensitivityMedium,
				schema.AnonName("medical_issues"): SensitivityLow,
				schema.AnonName("treatment"):      SensitivityLow,
				schema.AnonName("date_of_birth"):  SensitivityLow,
			},
			DefaultSensitivity: 0.1,
		},
		{ID: "nobody", DefaultSensitivity: 0.5},
		{ID: "everything", ConsentedServices: []string{"medical-service", "medical-research-service"},
			DefaultSensitivity: 0.9},
		{ID: "indifferent", ConsentedServices: []string{"medical-research-service"}},
		{ID: "picky", ConsentedServices: []string{"medical-service"},
			Sensitivities: map[string]float64{"name": 1, "diagnosis": 0}, DefaultSensitivity: 0.33},
	}
}

// TestValidateRejectsNaN pins the NaN guard: a NaN sensitivity must fail
// validation instead of reaching the analyzer, where it would corrupt the
// impact maximum (NaN compares false against everything).
func TestValidateRejectsNaN(t *testing.T) {
	nan := math.NaN()
	if err := (UserProfile{DefaultSensitivity: nan}).Validate(); err == nil {
		t.Fatal("NaN default sensitivity passed validation")
	}
	profile := UserProfile{Sensitivities: map[string]float64{"diagnosis": nan}}
	if err := profile.Validate(); err == nil {
		t.Fatal("NaN field sensitivity passed validation")
	}
	a := MustAnalyzer(Config{})
	p, err := core.Generate(surgeryModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze(p, profile); err == nil {
		t.Fatal("Analyze accepted a NaN sensitivity")
	}
}

// TestAnalyzeMatchesReference pins the compiled-view analyzer to the
// reference implementation on the case-study model across profile shapes:
// reflect.DeepEqual on the assessments and byte-identical JSON.
func TestAnalyzeMatchesReference(t *testing.T) {
	p, err := core.Generate(surgeryModel())
	if err != nil {
		t.Fatal(err)
	}
	configs := []Config{
		{},
		{Scenarios: []Scenario{{Name: "only-service", Probability: 0.4, AppliesToService: true}}},
		{Scenarios: []Scenario{{Name: "only-other", Probability: 0.6}}},
	}
	for ci, cfg := range configs {
		a := MustAnalyzer(cfg)
		for _, profile := range surgeryProfiles() {
			got, err := a.Analyze(p, profile)
			if err != nil {
				t.Fatalf("config %d, profile %s: %v", ci, profile.ID, err)
			}
			want, err := referenceAnalyze(a, context.Background(), p, profile)
			if err != nil {
				t.Fatalf("config %d, profile %s (reference): %v", ci, profile.ID, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("config %d, profile %s: assessment differs from reference\n got: %+v\nwant: %+v",
					ci, profile.ID, got, want)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(wantJSON) {
				t.Fatalf("config %d, profile %s: JSON differs from reference", ci, profile.ID)
			}
		}
	}
}

// BenchmarkAnalyzeCompiled measures the compiled-view disclosure-risk
// analysis of the case-study model (one full, uncached assessment per
// iteration). Compare with BenchmarkAnalyzeReference for the speedup of the
// compiled rewrite.
func BenchmarkAnalyzeCompiled(b *testing.B) {
	p, err := core.Generate(surgeryModel())
	if err != nil {
		b.Fatal(err)
	}
	p.Compiled() // shared view, built once per model as in production
	a := MustAnalyzer(Config{})
	profile := surgeryProfiles()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assessment, err := a.Analyze(p, profile)
		if err != nil {
			b.Fatal(err)
		}
		if len(assessment.Findings) == 0 {
			b.Fatal("no findings on the case-study model")
		}
	}
}

// BenchmarkAnalyzeReference measures the retired map-walking analysis on the
// same model and profile, kept as the baseline for the compiled rewrite.
func BenchmarkAnalyzeReference(b *testing.B) {
	p, err := core.Generate(surgeryModel())
	if err != nil {
		b.Fatal(err)
	}
	a := MustAnalyzer(Config{})
	profile := surgeryProfiles()[0]
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assessment, err := referenceAnalyze(a, ctx, p, profile)
		if err != nil {
			b.Fatal(err)
		}
		if len(assessment.Findings) == 0 {
			b.Fatal("no findings on the case-study model")
		}
	}
}
