// Package risk implements the paper's automated analysis of the risk of
// unwanted disclosure (Section III-A).
//
// The analysis is performed per user against a generated privacy LTS. The
// user's privacy-control requirements are captured by a UserProfile: the
// services the user has agreed to use, and a sensitivity value σ(d) in [0,1]
// for each data field. Actors that take part in a consented service are
// "allowed"; everybody else is "non-allowed", and the sensitivity of a field
// relative to an allowed actor is zero.
//
// Risk has two dimensions:
//
//   - Impact: the maximum sensitivity change a transition causes relative to
//     the absolute privacy state — in practice, the highest σ(d, a) among the
//     state variables the transition newly sets for non-allowed actors.
//   - Likelihood: attached to read actions that sit outside the user's
//     consented services, as the sum of the probabilities of the
//     uncorrelated scenarios under which such a read would happen
//     (accidental access, maintenance exposure, execution of a non-consented
//     service).
//
// Impact and likelihood are bucketed into low/medium/high categories and
// combined through a service-specific risk matrix into a risk level per
// transition; the overall assessment is the maximum across transitions.
package risk

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Canonical sensitivity values for the qualitative categories the paper
// mentions ("a sensitivity category (low, medium, high for example), or a
// number ... between 0 and 1").
const (
	SensitivityLow    = 0.25
	SensitivityMedium = 0.5
	SensitivityHigh   = 0.9
)

// Level is a qualitative risk (or impact/likelihood) category.
type Level int

// Levels, from no risk to high risk. They begin at one so the zero value is
// distinguishable from "assessed as none".
const (
	LevelNone Level = iota + 1
	LevelLow
	LevelMedium
	LevelHigh
)

var levelNames = map[Level]string{
	LevelNone:   "none",
	LevelLow:    "low",
	LevelMedium: "medium",
	LevelHigh:   "high",
}

// String returns the lower-case level name.
func (l Level) String() string {
	if s, ok := levelNames[l]; ok {
		return s
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel converts a level name back into a Level.
func ParseLevel(s string) (Level, error) {
	for l, name := range levelNames {
		if name == strings.ToLower(strings.TrimSpace(s)) {
			return l, nil
		}
	}
	return 0, fmt.Errorf("risk: unknown level %q", s)
}

// UserProfile captures one user's privacy-control requirements.
type UserProfile struct {
	// ID identifies the user (or simulated user at design time).
	ID string `json:"id"`
	// ConsentedServices lists the service IDs the user agreed to use.
	ConsentedServices []string `json:"consented_services"`
	// Sensitivities maps field names to σ(d) in [0,1]. Fields not listed
	// default to DefaultSensitivity.
	Sensitivities map[string]float64 `json:"sensitivities"`
	// DefaultSensitivity is used for fields without an explicit value;
	// a zero value means "not sensitive at all".
	DefaultSensitivity float64 `json:"default_sensitivity"`
}

// Validate checks that every sensitivity lies in [0,1]. The comparisons are
// written so NaN is rejected too: a NaN sensitivity would otherwise slip
// through a plain range check and corrupt impact computation downstream.
func (u UserProfile) Validate() error {
	if !(u.DefaultSensitivity >= 0 && u.DefaultSensitivity <= 1) {
		return fmt.Errorf("risk: default sensitivity %v outside [0,1]", u.DefaultSensitivity)
	}
	for f, s := range u.Sensitivities {
		if !(s >= 0 && s <= 1) {
			return fmt.Errorf("risk: sensitivity of %q is %v, outside [0,1]", f, s)
		}
	}
	return nil
}

// Sensitivity returns σ(d) for the field.
func (u UserProfile) Sensitivity(field string) float64 {
	if s, ok := u.Sensitivities[field]; ok {
		return s
	}
	return u.DefaultSensitivity
}

// Consented reports whether the user agreed to use the service.
func (u UserProfile) Consented(serviceID string) bool {
	for _, s := range u.ConsentedServices {
		if s == serviceID {
			return true
		}
	}
	return false
}

// Scenario is one of the uncorrelated situations under which a non-allowed
// actor might read personal data outside any consented service
// (Section III-A lists accidental access, exposure during maintenance
// deletion, and execution of a non-consented service).
type Scenario struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Probability float64 `json:"probability"`
	// AppliesToService is true for the scenario modelling the execution of a
	// whole non-consented service; it contributes to reads that are part of
	// declared flows of non-consented services rather than to potential
	// reads.
	AppliesToService bool `json:"applies_to_service,omitempty"`
}

// Scenario names used by DefaultScenarios.
const (
	ScenarioAccidentalAccess    = "accidental-access"
	ScenarioMaintenanceExposure = "maintenance-exposure"
	ScenarioNonConsentedService = "non-consented-service"
)

// DefaultScenarios returns the three scenarios of Section III-A with default
// probabilities. Deployments should calibrate these per service.
func DefaultScenarios() []Scenario {
	return []Scenario{
		{Name: ScenarioAccidentalAccess, Probability: 0.05,
			Description: "a datastore query returns a small subset of users and the actor identifies fields while searching for a different user"},
		{Name: ScenarioMaintenanceExposure, Probability: 0.10,
			Description: "an actor maintaining the service is shown the data, for example before deleting it"},
		{Name: ScenarioNonConsentedService, Probability: 0.25, AppliesToService: true,
			Description: "an actor begins the execution of a service that the user did not agree to use"},
	}
}

// Matrix buckets impact and likelihood values into low/medium/high and maps
// each (impact, likelihood) pair to a risk level. "The categorisation of the
// impact and likelihood, as well as the table to determine the risk level,
// should be specified according to the type of service."
type Matrix struct {
	// ImpactThresholds are the upper bounds of the low and medium impact
	// buckets; impacts above the second threshold are high.
	ImpactThresholds [2]float64 `json:"impact_thresholds"`
	// LikelihoodThresholds are the analogous bounds for likelihood.
	LikelihoodThresholds [2]float64 `json:"likelihood_thresholds"`
	// Table maps [impact bucket][likelihood bucket] to a risk level, where
	// bucket 0 is low, 1 is medium and 2 is high.
	Table [3][3]Level `json:"table"`
}

// DefaultMatrix returns a conventional 3×3 risk matrix: risk grows with both
// dimensions, a high-impact event is at least medium risk, and a low-impact
// event is at most medium risk.
func DefaultMatrix() Matrix {
	return Matrix{
		ImpactThresholds:     [2]float64{0.34, 0.67},
		LikelihoodThresholds: [2]float64{0.2, 0.5},
		Table: [3][3]Level{
			{LevelLow, LevelLow, LevelMedium},   // low impact
			{LevelLow, LevelMedium, LevelHigh},  // medium impact
			{LevelMedium, LevelHigh, LevelHigh}, // high impact
		},
	}
}

// Validate checks threshold ordering and that every table entry is a defined
// level.
func (m Matrix) Validate() error {
	if !(m.ImpactThresholds[0] >= 0 && m.ImpactThresholds[0] <= m.ImpactThresholds[1] && m.ImpactThresholds[1] <= 1) {
		return errors.New("risk: impact thresholds must satisfy 0 <= t0 <= t1 <= 1")
	}
	if !(m.LikelihoodThresholds[0] >= 0 && m.LikelihoodThresholds[0] <= m.LikelihoodThresholds[1] && m.LikelihoodThresholds[1] <= 1) {
		return errors.New("risk: likelihood thresholds must satisfy 0 <= t0 <= t1 <= 1")
	}
	for i := range m.Table {
		for j := range m.Table[i] {
			if _, ok := levelNames[m.Table[i][j]]; !ok {
				return fmt.Errorf("risk: matrix entry [%d][%d] is not a valid level", i, j)
			}
		}
	}
	return nil
}

// ImpactLevel buckets an impact value.
func (m Matrix) ImpactLevel(impact float64) Level {
	return bucketLevel(impact, m.ImpactThresholds)
}

// LikelihoodLevel buckets a likelihood value.
func (m Matrix) LikelihoodLevel(likelihood float64) Level {
	return bucketLevel(likelihood, m.LikelihoodThresholds)
}

func bucketLevel(v float64, thresholds [2]float64) Level {
	switch {
	case v <= 0:
		return LevelNone
	case v < thresholds[0]:
		return LevelLow
	case v < thresholds[1]:
		return LevelMedium
	default:
		return LevelHigh
	}
}

// Risk combines bucketed impact and likelihood through the table. A none on
// either dimension yields none.
func (m Matrix) Risk(impact, likelihood Level) Level {
	if impact == LevelNone || likelihood == LevelNone {
		return LevelNone
	}
	return m.Table[int(impact-LevelLow)][int(likelihood-LevelLow)]
}

// Config configures an Analyzer. The zero value selects the defaults.
type Config struct {
	Scenarios []Scenario
	Matrix    Matrix
}

func (c Config) withDefaults() Config {
	if len(c.Scenarios) == 0 {
		c.Scenarios = DefaultScenarios()
	}
	zero := Matrix{}
	if c.Matrix == zero {
		c.Matrix = DefaultMatrix()
	}
	return c
}
