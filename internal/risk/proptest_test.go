package risk_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"privascope/internal/proptest"
	"privascope/internal/proptest/scenario"
	"privascope/internal/risk"
)

// findingSummary reduces an assessment to its set of distinct disclosure
// events — (actor, datastore, driving field, risk level) — the
// representation-independent content minimisation must preserve: the
// quotient collapses repeated occurrences of the same event across merged
// states, so finding multiplicity is not preserved, but the event set and
// the per-event maximum risk are.
func findingSummary(a *risk.Assessment) []string {
	set := make(map[string]bool, len(a.Findings))
	for _, f := range a.Findings {
		set[fmt.Sprintf("%s|%s|%s|%s", f.Actor, f.Datastore, f.DrivingField, f.Risk)] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestPropAnalyzeIsDeterministic: assessing the same scenario twice yields
// deeply equal assessments — findings, ordering, rendered reports and all.
func TestPropAnalyzeIsDeterministic(t *testing.T) {
	an := risk.MustAnalyzer(risk.Config{})
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		for _, profile := range s.Profiles {
			first, err := an.Analyze(p, profile)
			if err != nil {
				return err
			}
			again, err := an.Analyze(p, profile)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("seed %d: two analyses of profile %s differ", seed, profile.ID)
			}
		}
		return nil
	})
}

// TestPropMinimizationPreservesAssessments is the metamorphic headline
// property: assessing the payload-respecting quotient (core.Minimized) finds
// exactly the same disclosure events at the same risk levels as assessing
// the original model, for every profile of the scenario's population.
func TestPropMinimizationPreservesAssessments(t *testing.T) {
	an := risk.MustAnalyzer(risk.Config{})
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		q, _ := p.Minimized()
		for _, profile := range s.Profiles {
			orig, err := an.Analyze(p, profile)
			if err != nil {
				return err
			}
			min, err := an.Analyze(q, profile)
			if err != nil {
				return err
			}
			if orig.OverallRisk != min.OverallRisk {
				t.Fatalf("seed %d: profile %s: overall risk %s on original, %s on quotient",
					seed, profile.ID, orig.OverallRisk, min.OverallRisk)
			}
			so, sm := findingSummary(orig), findingSummary(min)
			if !reflect.DeepEqual(so, sm) {
				t.Fatalf("seed %d: profile %s: disclosure events differ\noriginal: %v\nquotient: %v",
					seed, profile.ID, so, sm)
			}
		}
		return nil
	})
}

// TestPropCompareOfIdenticalAssessmentsIsNeutral: diffing an assessment
// against itself reports every event unchanged.
func TestPropCompareOfIdenticalAssessmentsIsNeutral(t *testing.T) {
	an := risk.MustAnalyzer(risk.Config{})
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		a, err := an.Analyze(p, s.Profiles[0])
		if err != nil {
			return err
		}
		for _, c := range risk.Compare(a, a) {
			if c.Before != c.After {
				t.Fatalf("seed %d: self-comparison reports a change: %s", seed, c)
			}
		}
		return nil
	})
}
