package runtime

import (
	"context"
	"fmt"

	"privascope/internal/lts"
	"privascope/internal/risk"
)

// UserSnapshot is the portable per-user monitor state: everything another
// monitor needs to continue assessing the user's event stream exactly where
// this one stopped. It is the unit of state handoff when cluster ownership
// moves between nodes (internal/cluster): the profile rebuilds the findings
// index on the importing side, State resumes the LTS cursor, and the two
// cumulative counters make loss detectable — if a handoff chain ever dropped
// an accepted event or an alert, the final owner's counters would fall short
// of a single monitor's.
type UserSnapshot struct {
	// Profile is the user's registered risk profile.
	Profile risk.UserProfile
	// State is the user's current privacy state in the model.
	State lts.StateID
	// Applied is the cumulative number of events applied for this user,
	// carried across handoffs (not reset when the user moves to a new
	// monitor).
	Applied int64
	// Alerts is the user's cumulative alert cursor: how many alerts this
	// user's stream has raised across every monitor that has owned it.
	Alerts int64
}

// ExportUser snapshots the user's current monitor state without disturbing
// it. The second return is false when the user is not registered.
func (m *Monitor) ExportUser(userID string) (UserSnapshot, bool) {
	shard := m.shardFor(userID)
	shard.mu.Lock()
	defer shard.mu.Unlock()
	cursor, ok := shard.cursors[userID]
	if !ok {
		return UserSnapshot{}, false
	}
	return UserSnapshot{
		Profile: shard.profiles[userID],
		State:   cursor,
		Applied: shard.applied[userID],
		Alerts:  shard.alertCount[userID],
	}, true
}

// RemoveUser stops tracking the user, dropping their cursor, profile and
// counters. Alerts already raised stay in this monitor's log — they happened
// here; a handoff moves the user's future, not their history. It reports
// whether the user was registered.
func (m *Monitor) RemoveUser(userID string) bool {
	shard := m.shardFor(userID)
	shard.mu.Lock()
	defer shard.mu.Unlock()
	if _, ok := shard.cursors[userID]; !ok {
		return false
	}
	delete(shard.cursors, userID)
	delete(shard.profiles, userID)
	delete(shard.findings, userID)
	delete(shard.applied, userID)
	delete(shard.alertCount, userID)
	return true
}

// ImportUser is ImportUserContext with a background context.
func (m *Monitor) ImportUser(snap UserSnapshot) error {
	return m.ImportUserContext(context.Background(), snap)
}

// ImportUserContext registers the user from a snapshot, resuming their
// cursor at the snapshot state instead of the initial state. The snapshot is
// validated against this monitor's model before any state is touched: the
// profile must be well-formed, the state must exist in the LTS, and the
// cumulative counters must be non-negative — a snapshot from a different
// model (or a corrupted handoff frame that slipped past the codec) is
// rejected, never half-applied. Importing an already-registered user
// overwrites their state; imports are idempotent, so a retried handoff is
// harmless.
func (m *Monitor) ImportUserContext(ctx context.Context, snap UserSnapshot) error {
	if snap.Profile.ID == "" {
		return fmt.Errorf("runtime: import: snapshot has no user ID")
	}
	if err := snap.Profile.Validate(); err != nil {
		return fmt.Errorf("runtime: import of user %q: %w", snap.Profile.ID, err)
	}
	if !m.lts.Graph.HasState(snap.State) {
		return fmt.Errorf("runtime: import of user %q: state %q is not in the model", snap.Profile.ID, snap.State)
	}
	if snap.Applied < 0 || snap.Alerts < 0 {
		return fmt.Errorf("runtime: import of user %q: negative cursor (applied %d, alerts %d)",
			snap.Profile.ID, snap.Applied, snap.Alerts)
	}
	index, err := m.shapeIndex(ctx, snap.Profile)
	if err != nil {
		return err
	}
	shard := m.shardFor(snap.Profile.ID)
	shard.mu.Lock()
	defer shard.mu.Unlock()
	shard.profiles[snap.Profile.ID] = snap.Profile
	shard.cursors[snap.Profile.ID] = snap.State
	shard.findings[snap.Profile.ID] = index
	shard.applied[snap.Profile.ID] = snap.Applied
	shard.alertCount[snap.Profile.ID] = snap.Alerts
	return nil
}
