package runtime_test

import (
	"strings"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/runtime"
	"privascope/internal/service"
)

// FuzzObserve feeds arbitrary events to the monitor and asserts its safety
// contract: Observe never panics, never moves the cursor to a state outside
// the model, and every non-denied event that matches no transition raises
// exactly one AlertUnmodelled. The fuzzer mutates every event component —
// actor, action (including invalid ones), datastore, fields and the denied
// flag — against a live monitor whose cursor wanders as matching events
// land. Run it with: go test -fuzz=FuzzObserve ./internal/runtime
func FuzzObserve(f *testing.F) {
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		f.Fatal(err)
	}
	// panic rather than f.Fatal: this also runs inside the f.Fuzz callback
	// (periodic monitor recycling), where F methods must not be called.
	newMonitor := func() *runtime.Monitor {
		monitor, err := runtime.NewMonitor(p, runtime.Config{Shards: 4})
		if err != nil {
			panic(err)
		}
		if err := monitor.RegisterUser(casestudy.PatientProfile()); err != nil {
			panic(err)
		}
		return monitor
	}
	monitor := newMonitor()
	events := 0

	// Seeds: a valid collect, a potential read, unmodelled behaviour, a
	// denied operation, junk fields and an unknown user.
	f.Add("receptionist", uint8(core.ActionCollect), "", "name,date_of_birth", false, true)
	f.Add("administrator", uint8(core.ActionRead), "ehr", "diagnosis", false, true)
	f.Add("researcher", uint8(core.ActionRead), "ehr", "diagnosis", false, true)
	f.Add("nurse", uint8(core.ActionRead), "ehr", "diagnosis", true, true)
	f.Add("doctor", uint8(200), "ehr", ",,\x00,", false, true)
	f.Add("", uint8(0), "", "", false, false)

	f.Fuzz(func(t *testing.T, actor string, action uint8, datastore, fieldCSV string, denied, knownUser bool) {
		// Periodically start fresh so a long fuzz run does not accumulate an
		// unbounded alert log.
		if events++; events > 4096 {
			monitor, events = newMonitor(), 0
		}
		userID := casestudy.PatientProfile().ID
		if !knownUser {
			userID = "unregistered-" + actor
		}
		var fields []string
		for _, field := range strings.Split(fieldCSV, ",") {
			if field != "" {
				fields = append(fields, field)
			}
		}
		ev := service.Event{
			Actor:     actor,
			Action:    core.Action(action),
			Datastore: datastore,
			UserID:    userID,
			Fields:    fields,
			Denied:    denied,
		}
		obs, err := monitor.Observe(ev)
		if !knownUser {
			if err == nil {
				t.Fatalf("unregistered user %q accepted", userID)
			}
			return
		}
		if err != nil {
			t.Fatalf("Observe(%+v): %v", ev, err)
		}
		switch {
		case denied:
			if obs.Matched || len(obs.Alerts) != 1 || obs.Alerts[0].Kind != runtime.AlertDenied {
				t.Fatalf("denied event: obs = %+v, want one denied-operation alert", obs)
			}
		case !obs.Matched:
			if obs.From != obs.To {
				t.Fatalf("cursor moved on unmodelled behaviour: %+v", obs)
			}
			if len(obs.Alerts) != 1 || obs.Alerts[0].Kind != runtime.AlertUnmodelled {
				t.Fatalf("unmodelled event must raise exactly one unmodelled alert, got %+v", obs.Alerts)
			}
		default:
			if obs.Transition.From != obs.From || obs.Transition.To != obs.To {
				t.Fatalf("matched observation inconsistent: %+v", obs)
			}
			if _, ok := p.Vector(obs.To); !ok {
				t.Fatalf("cursor moved to a state outside the model: %s", obs.To)
			}
			for _, a := range obs.Alerts {
				if a.Kind != runtime.AlertRisk {
					t.Fatalf("matched event raised non-risk alert: %+v", a)
				}
			}
		}
		if state, ok := monitor.CurrentState(userID); !ok || state != obs.To {
			t.Fatalf("CurrentState = %v/%v, want %s", state, ok, obs.To)
		}
	})
}
