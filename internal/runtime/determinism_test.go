package runtime_test

import (
	"fmt"
	"reflect"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/runtime"
	"privascope/internal/service"
)

// mixedEventStream interleaves, across several users, consented
// medical-service runs with risky potential reads, unmodelled behaviour and
// denied operations — every alert kind and the no-alert hot path.
func mixedEventStream(users []string) []service.Event {
	var out []service.Event
	for _, id := range users {
		out = append(out, medicalServiceEvents(id)...)
	}
	for i, id := range users {
		switch i % 3 {
		case 0: // risky potential read by the administrator
			out = append(out, service.Event{Actor: casestudy.ActorAdministrator, Action: core.ActionRead,
				Datastore: casestudy.StoreEHR, UserID: id, Fields: []string{casestudy.FieldDiagnosis}})
		case 1: // unmodelled: the researcher reads the raw EHR
			out = append(out, service.Event{Actor: casestudy.ActorResearcher, Action: core.ActionRead,
				Datastore: casestudy.StoreEHR, UserID: id, Fields: []string{casestudy.FieldDiagnosis}})
		case 2: // denied operation
			out = append(out, service.Event{Actor: casestudy.ActorNurse, Action: core.ActionRead,
				Datastore: casestudy.StoreEHR, UserID: id, Fields: []string{casestudy.FieldDiagnosis}, Denied: true})
		}
	}
	return out
}

// TestMonitorShardCountDeterminism is the tentpole's behavioural contract:
// the same sequential event stream produces identical observations, cursor
// positions and alerts (content and order) for 1, 4 and 16 shards.
func TestMonitorShardCountDeterminism(t *testing.T) {
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	users := make([]string, 9)
	for i := range users {
		users[i] = fmt.Sprintf("patient-%d", i)
	}
	stream := mixedEventStream(users)

	type result struct {
		observations []runtime.Observation
		alerts       []runtime.Alert
		users        []string
		cursors      map[string]string
	}
	runWith := func(shards int) result {
		monitor, err := runtime.NewMonitor(p, runtime.Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if got := monitor.Shards(); got != shards {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
		for _, id := range users {
			profile := casestudy.PatientProfile()
			profile.ID = id
			if err := monitor.RegisterUser(profile); err != nil {
				t.Fatal(err)
			}
		}
		res := result{cursors: make(map[string]string)}
		for i, ev := range stream {
			obs, err := monitor.Observe(ev)
			if err != nil {
				t.Fatalf("shards=%d: Observe(%d): %v", shards, i, err)
			}
			res.observations = append(res.observations, obs)
		}
		res.alerts = monitor.Alerts()
		res.users = monitor.Users()
		for _, id := range users {
			state, ok := monitor.CurrentState(id)
			if !ok {
				t.Fatalf("shards=%d: no cursor for %s", shards, id)
			}
			res.cursors[id] = string(state)
		}
		return res
	}

	baseline := runWith(1)
	if len(baseline.alerts) != len(users) {
		t.Fatalf("baseline alerts = %d, want one per user (%d)", len(baseline.alerts), len(users))
	}
	for _, shards := range []int{4, 16} {
		got := runWith(shards)
		if !reflect.DeepEqual(got.observations, baseline.observations) {
			t.Errorf("shards=%d: observations differ from single-shard baseline", shards)
		}
		if !reflect.DeepEqual(got.alerts, baseline.alerts) {
			t.Errorf("shards=%d: alerts differ from single-shard baseline", shards)
		}
		if !reflect.DeepEqual(got.users, baseline.users) {
			t.Errorf("shards=%d: Users() = %v, want %v", shards, got.users, baseline.users)
		}
		if !reflect.DeepEqual(got.cursors, baseline.cursors) {
			t.Errorf("shards=%d: cursors = %v, want %v", shards, got.cursors, baseline.cursors)
		}
	}
}

// TestObserveBatchMatchesSequentialObserve feeds the same stream through
// ObserveBatch (parallel shard fan-out) and sequential Observe calls and
// requires identical observations and per-user alert sequences.
func TestObserveBatchMatchesSequentialObserve(t *testing.T) {
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	users := make([]string, 8)
	for i := range users {
		users[i] = fmt.Sprintf("patient-%d", i)
	}
	stream := mixedEventStream(users)

	register := func(m *runtime.Monitor) {
		for _, id := range users {
			profile := casestudy.PatientProfile()
			profile.ID = id
			if err := m.RegisterUser(profile); err != nil {
				t.Fatal(err)
			}
		}
	}

	sequential, err := runtime.NewMonitor(p, runtime.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	register(sequential)
	var want []runtime.Observation
	for _, ev := range stream {
		obs, err := sequential.Observe(ev)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, obs)
	}

	batched, err := runtime.NewMonitor(p, runtime.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	register(batched)
	got, err := batched.ObserveBatch(stream)
	if err != nil {
		t.Fatalf("ObserveBatch: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("ObserveBatch returned %d observations, want %d", len(got), len(want))
	}
	for i := range want {
		// Alert sequence numbers may differ across concurrent shards; compare
		// everything else and the alert contents.
		if got[i].Matched != want[i].Matched || got[i].From != want[i].From || got[i].To != want[i].To ||
			!reflect.DeepEqual(got[i].Transition, want[i].Transition) {
			t.Errorf("observation %d differs: got %+v want %+v", i, got[i], want[i])
		}
		if len(got[i].Alerts) != len(want[i].Alerts) {
			t.Fatalf("observation %d: %d alerts, want %d", i, len(got[i].Alerts), len(want[i].Alerts))
		}
		for j := range want[i].Alerts {
			g, w := got[i].Alerts[j], want[i].Alerts[j]
			if g.Kind != w.Kind || g.UserID != w.UserID || g.Message != w.Message || g.Risk != w.Risk {
				t.Errorf("observation %d alert %d differs: got %+v want %+v", i, j, g, w)
			}
		}
	}
	// Per-user alert sequences must match exactly.
	for _, id := range users {
		g := alertSummaries(batched.AlertsFor(id))
		w := alertSummaries(sequential.AlertsFor(id))
		if !reflect.DeepEqual(g, w) {
			t.Errorf("AlertsFor(%s): got %v want %v", id, g, w)
		}
	}
}

func alertSummaries(alerts []runtime.Alert) []string {
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = fmt.Sprintf("%s|%s|%s", a.Kind, a.UserID, a.Message)
	}
	return out
}

// TestObserveBatchUnregisteredUsers: unknown users yield a joined error and
// zero observations while the rest of the batch is still processed.
func TestObserveBatchUnregisteredUsers(t *testing.T) {
	_, monitor := surgeryMonitor(t)
	batch := []service.Event{
		{Actor: casestudy.ActorReceptionist, Action: core.ActionCollect, UserID: "patient-1",
			Fields: []string{casestudy.FieldName, casestudy.FieldDateOfBirth}},
		{Actor: casestudy.ActorReceptionist, Action: core.ActionCollect, UserID: "stranger",
			Fields: []string{casestudy.FieldName}},
	}
	observations, err := monitor.ObserveBatch(batch)
	if err == nil {
		t.Fatal("ObserveBatch accepted an unregistered user")
	}
	if len(observations) != 2 {
		t.Fatalf("observations = %d, want 2", len(observations))
	}
	if !observations[0].Matched {
		t.Error("registered user's event should have matched")
	}
	if observations[1].Matched || len(observations[1].Alerts) != 0 {
		t.Errorf("unregistered user's observation should be zero, got %+v", observations[1])
	}
}

// TestWatchBatched drives the batched watcher through a closing channel.
func TestWatchBatched(t *testing.T) {
	_, monitor := surgeryMonitor(t)
	ch := make(chan service.Event, 16)
	for _, ev := range medicalServiceEvents("patient-1") {
		ch <- ev
	}
	close(ch)
	if n := monitor.WatchBatched(ch, 4); n != 6 {
		t.Errorf("WatchBatched observed %d events, want 6", n)
	}
	if state, _ := monitor.CurrentState("patient-1"); state == "" {
		t.Error("cursor missing after WatchBatched")
	}
	if alerts := monitor.Alerts(); len(alerts) != 0 {
		t.Errorf("consented run raised alerts: %+v", alerts)
	}
}
