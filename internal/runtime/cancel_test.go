package runtime_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/runtime"
	"privascope/internal/service"
	"privascope/internal/testutil"
)

// cancelMonitor builds a sharded monitor with many registered users, so
// ObserveBatchContext takes the parallel per-shard fan-out path.
func cancelMonitor(t *testing.T) (*runtime.Monitor, []string) {
	t.Helper()
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	m, err := runtime.NewMonitor(p, runtime.Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	base := casestudy.PatientProfile()
	var users []string
	for i := 0; i < 32; i++ {
		profile := base
		profile.ID = fmt.Sprintf("user-%d", i)
		if err := m.RegisterUser(profile); err != nil {
			t.Fatal(err)
		}
		users = append(users, profile.ID)
	}
	return m, users
}

func TestObserveBatchContextPreCancelled(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	m, users := cancelMonitor(t)
	var events []service.Event
	for _, u := range users {
		events = append(events, casestudy.MedicalServiceEvents(u)...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obs, err := m.ObserveBatchContext(ctx, events)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(obs) != len(events) {
		t.Fatalf("observations = %d, want %d (aligned with input)", len(obs), len(events))
	}
	for i, o := range obs {
		if o.Matched {
			t.Fatalf("event %d was applied despite pre-cancelled context", i)
		}
	}
	if alerts := m.Alerts(); len(alerts) != 0 {
		t.Fatalf("%d alerts raised despite pre-cancelled context", len(alerts))
	}
}

func TestObserveBatchContextBackgroundMatchesObserveBatch(t *testing.T) {
	m1, users := cancelMonitor(t)
	m2, _ := cancelMonitor(t)
	var events []service.Event
	for _, u := range users {
		events = append(events, casestudy.MedicalServiceEvents(u)...)
	}
	obs1, err := m1.ObserveBatch(events)
	if err != nil {
		t.Fatal(err)
	}
	obs2, err := m2.ObserveBatchContext(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	for i := range obs1 {
		if obs1[i].From != obs2[i].From || obs1[i].To != obs2[i].To || obs1[i].Matched != obs2[i].Matched {
			t.Fatalf("observation %d differs between ObserveBatch and ObserveBatchContext", i)
		}
	}
}

func TestRegisterUserContextCancelled(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	m, err := runtime.NewMonitor(p, runtime.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.RegisterUserContext(ctx, casestudy.PatientProfile()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancelled analysis must not be cached: registering again with a
	// live context runs the real analysis and succeeds.
	if err := m.RegisterUserContext(context.Background(), casestudy.PatientProfile()); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}
