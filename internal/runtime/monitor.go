// Package runtime monitors the privacy risks of a running distributed data
// service against its generated privacy model.
//
// The paper's stated goal is to use the models not only "to identify privacy
// risks during the development of an online service" but "also [to] monitor
// the privacy risks during the lifetime of the service (as the users, data,
// and behaviour may change)". The Monitor does exactly that: it keeps, per
// user, a cursor into the privacy LTS; every observed operation (an Event
// from package service) advances the cursor along a matching transition, the
// pre-computed risk assessment for that user is consulted, and an alert is
// raised when the observed transition carries a risk at or above the alert
// threshold or when the behaviour is not part of the model at all
// (unmodelled behaviour — a design/implementation mismatch).
//
// The monitor is built for production event rates. Per-user state is spread
// over lock-striped shards keyed by user-ID hash, so concurrent Observe
// calls on different users do not contend; event matching runs against a
// transition index compiled once per model (see index.go); and risk
// assessments are deduplicated through a profile-fingerprint cache, so
// registering the millionth user with an already-seen profile shape is O(1).
// The observable behaviour — observations, cursor movement, alerts — is
// identical for every shard count.
package runtime

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"

	"privascope/internal/core"
	"privascope/internal/lts"
	"privascope/internal/risk"
	"privascope/internal/service"
)

// AlertKind classifies monitor alerts.
type AlertKind int

// Alert kinds. AlertRisk marks an observed transition whose assessed risk
// meets the threshold; AlertUnmodelled marks an observed operation with no
// matching transition in the model; AlertDenied marks an operation the
// access-control enforcement refused at runtime.
const (
	AlertRisk AlertKind = iota + 1
	AlertUnmodelled
	AlertDenied
)

// String returns the lower-case kind name.
func (k AlertKind) String() string {
	switch k {
	case AlertRisk:
		return "risk"
	case AlertUnmodelled:
		return "unmodelled-behaviour"
	case AlertDenied:
		return "denied-operation"
	default:
		return fmt.Sprintf("alertkind(%d)", int(k))
	}
}

// Alert is one notification raised by the monitor.
type Alert struct {
	Kind   AlertKind
	UserID string
	Event  service.Event
	// Risk and Finding are set for AlertRisk alerts.
	Risk    risk.Level
	Finding risk.Finding
	// Message is a human-readable summary.
	Message string

	// seq orders alerts across shards: it is assigned from a monitor-wide
	// counter at the moment the alert is raised, so Alerts() can merge the
	// per-shard slices back into observation order.
	seq int64
}

// Observation is the result of feeding one event to the monitor.
type Observation struct {
	// Matched reports whether a transition of the model matched the event.
	Matched bool
	// From and To are the user's privacy state before and after the event
	// (equal when no transition matched).
	From, To lts.StateID
	// Transition is the matched transition when Matched.
	Transition lts.Transition
	// Alerts raised by this observation, if any.
	Alerts []Alert
}

// findingKey indexes a user's assessment findings by the matched transition
// and the at-risk actor, so an observed event maps to its risk level in
// O(1). Transitions compare by value: (From, To, Label); generation shares
// label pointers, so this equals identity of the disclosure event.
type findingKey struct {
	tr    lts.Transition
	actor string
}

// findingsIndex is the per-profile-shape risk lookup table. It is built once
// per shape and shared read-only by every user with that shape.
type findingsIndex map[findingKey]risk.Finding

// monitorShard holds the mutable per-user state of one lock stripe.
type monitorShard struct {
	mu       sync.Mutex
	cursors  map[string]lts.StateID
	profiles map[string]risk.UserProfile
	findings map[string]findingsIndex
	alerts   []Alert
	// applied and alertCount are cumulative per-user cursors carried across
	// handoffs (UserSnapshot): events applied and alerts raised for the user,
	// including on previous owners.
	applied    map[string]int64
	alertCount map[string]int64
}

// Monitor tracks per-user privacy state against a privacy LTS. It is safe
// for concurrent use; Observe calls for users on different shards proceed in
// parallel.
type Monitor struct {
	lts   *core.PrivacyLTS
	cache *risk.AssessmentCache
	index *transitionIndex
	// alertAt is the minimum risk level that raises an alert.
	alertAt risk.Level

	shards   []monitorShard
	alertSeq atomic.Int64

	// shapes caches the compiled findings index per profile fingerprint.
	// Deduplication of the underlying (expensive) risk analysis is the
	// assessment cache's job; this memo only spares re-deriving the lookup
	// table from the shared assessment.
	shapeMu     sync.Mutex
	shapes      map[string]findingsIndex
	shapeHits   atomic.Int64
	shapeMisses atomic.Int64
}

// Config configures a Monitor.
type Config struct {
	// Analyzer is the disclosure-risk analyzer used to assess users; the
	// default configuration is used when nil.
	Analyzer *risk.Analyzer
	// AlertAt is the minimum risk level that raises an alert; defaults to
	// Medium.
	AlertAt risk.Level
	// Shards is the number of lock stripes user state is spread over; zero
	// or negative selects one per CPU. Purely a concurrency knob: for a
	// sequential event stream every value yields identical observations,
	// cursors and alerts, and under concurrent ingestion per-user sequences
	// and the alert set stay shard-count-independent (only the global
	// interleaving across users follows scheduling, as with any lock).
	Shards int
}

// NewMonitor creates a monitor for the generated privacy LTS. The model's
// transition index is compiled here, once, so Observe never scans labels.
func NewMonitor(p *core.PrivacyLTS, cfg Config) (*Monitor, error) {
	if p == nil {
		return nil, errors.New("runtime: privacy LTS must not be nil")
	}
	cache, err := risk.NewAssessmentCache(cfg.Analyzer)
	if err != nil {
		return nil, err
	}
	alertAt := cfg.AlertAt
	if alertAt == 0 {
		alertAt = risk.LevelMedium
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = goruntime.GOMAXPROCS(0)
	}
	m := &Monitor{
		lts:     p,
		cache:   cache,
		index:   newTransitionIndex(p),
		alertAt: alertAt,
		shards:  make([]monitorShard, shards),
		shapes:  make(map[string]findingsIndex),
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.cursors = make(map[string]lts.StateID)
		s.profiles = make(map[string]risk.UserProfile)
		s.findings = make(map[string]findingsIndex)
		s.applied = make(map[string]int64)
		s.alertCount = make(map[string]int64)
	}
	return m, nil
}

// Shards returns the number of lock stripes the monitor uses.
func (m *Monitor) Shards() int { return len(m.shards) }

// AssessmentCacheStats reports how many user registrations were served from
// the profile-fingerprint cache versus assessed from scratch.
func (m *Monitor) AssessmentCacheStats() (hits, misses int64) {
	return m.shapeHits.Load(), m.shapeMisses.Load()
}

// shardIndexFor hashes a user ID onto a lock stripe (inline FNV-1a: the
// hash/fnv API would allocate twice per event on the Observe hot path).
func (m *Monitor) shardIndexFor(userID string) int {
	if len(m.shards) == 1 {
		return 0
	}
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(userID); i++ {
		h ^= uint32(userID[i])
		h *= prime32
	}
	return int(h % uint32(len(m.shards)))
}

// shardFor selects the lock stripe owning the user's state.
func (m *Monitor) shardFor(userID string) *monitorShard {
	return &m.shards[m.shardIndexFor(userID)]
}

// RegisterUser starts tracking a user: their cursor is placed at the initial
// (absolute privacy) state and their profile is assessed against the model so
// observed transitions can be mapped to risk levels cheaply. The assessment
// and its findings index are computed once per profile shape (Fingerprint)
// and shared, so registration is O(1) after the first user of each shape.
func (m *Monitor) RegisterUser(profile risk.UserProfile) error {
	return m.RegisterUserContext(context.Background(), profile)
}

// RegisterUserContext is RegisterUser with cancellation: the first
// registration of a profile shape runs a full risk analysis, which polls ctx
// and aborts with ctx.Err() when the caller cancels; nothing is cached for
// the shape in that case.
func (m *Monitor) RegisterUserContext(ctx context.Context, profile risk.UserProfile) error {
	index, err := m.shapeIndex(ctx, profile)
	if err != nil {
		return err
	}
	shard := m.shardFor(profile.ID)
	shard.mu.Lock()
	defer shard.mu.Unlock()
	shard.profiles[profile.ID] = profile
	shard.cursors[profile.ID] = m.lts.InitialState()
	shard.findings[profile.ID] = index
	shard.applied[profile.ID] = 0
	shard.alertCount[profile.ID] = 0
	return nil
}

// shapeIndex returns the shared findings index for the profile's shape,
// building it on first use. Registrations racing on a brand-new shape may
// each derive the (cheap) lookup table, but the expensive analysis beneath
// is single-flighted by the assessment cache; the first inserted index wins
// so all users of a shape share one table.
func (m *Monitor) shapeIndex(ctx context.Context, profile risk.UserProfile) (findingsIndex, error) {
	fp := profile.Fingerprint()
	m.shapeMu.Lock()
	index, ok := m.shapes[fp]
	m.shapeMu.Unlock()
	if ok {
		m.shapeHits.Add(1)
		return index, nil
	}
	m.shapeMisses.Add(1)
	assessment, err := m.cache.AnalyzeFingerprinted(ctx, m.lts, profile, fp)
	if err != nil {
		return nil, err
	}
	index = make(findingsIndex, len(assessment.Findings))
	for _, f := range assessment.Findings {
		key := findingKey{tr: f.Transition, actor: f.Actor}
		if existing, ok := index[key]; !ok || f.Risk > existing.Risk {
			index[key] = f
		}
	}
	m.shapeMu.Lock()
	if existing, ok := m.shapes[fp]; ok {
		index = existing
	} else {
		m.shapes[fp] = index
	}
	m.shapeMu.Unlock()
	return index, nil
}

// Users returns the IDs of registered users, sorted.
func (m *Monitor) Users() []string {
	var out []string
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for id := range s.profiles {
			out = append(out, id)
		}
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// CurrentState returns the user's current privacy state.
func (m *Monitor) CurrentState(userID string) (lts.StateID, bool) {
	shard := m.shardFor(userID)
	shard.mu.Lock()
	defer shard.mu.Unlock()
	id, ok := shard.cursors[userID]
	return id, ok
}

// CurrentVector returns the user's current privacy state vector.
func (m *Monitor) CurrentVector(userID string) (core.StateVector, bool) {
	id, ok := m.CurrentState(userID)
	if !ok {
		return core.StateVector{}, false
	}
	return m.lts.Vector(id)
}

// Alerts returns a copy of every alert raised so far, in the order they were
// raised.
func (m *Monitor) Alerts() []Alert {
	var out []Alert
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		out = append(out, s.alerts...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// AlertsFor returns the alerts concerning one user.
func (m *Monitor) AlertsFor(userID string) []Alert {
	shard := m.shardFor(userID)
	shard.mu.Lock()
	defer shard.mu.Unlock()
	var out []Alert
	for _, a := range shard.alerts {
		if a.UserID == userID {
			out = append(out, a)
		}
	}
	return out
}

// deniedAlert, unmodelledAlert and riskAlert build the three alert shapes.
// They are shared by Observe and IngestBatch so the two ingestion paths can
// never drift apart in what they record — the cluster alert-equivalence
// property (internal/cluster) depends on the alerts being byte-identical.
func deniedAlert(ev *service.Event) Alert {
	return Alert{
		Kind:   AlertDenied,
		UserID: ev.UserID,
		Event:  *ev,
		Message: fmt.Sprintf("access-control denied %s by %q on %s.%v",
			ev.Action, ev.Actor, ev.Datastore, ev.Fields),
	}
}

func unmodelledAlert(ev *service.Event, cursor lts.StateID) Alert {
	return Alert{
		Kind:   AlertUnmodelled,
		UserID: ev.UserID,
		Event:  *ev,
		Message: fmt.Sprintf("observed %s of %v by %q on %q has no matching transition from state %s; the design model and the running system disagree",
			ev.Action, ev.Fields, ev.Actor, ev.Datastore, cursor),
	}
}

func riskAlert(ev *service.Event, finding risk.Finding) Alert {
	return Alert{
		Kind:    AlertRisk,
		UserID:  ev.UserID,
		Event:   *ev,
		Risk:    finding.Risk,
		Finding: finding,
		Message: fmt.Sprintf("%s-risk disclosure event for user %q: %s", finding.Risk, ev.UserID, finding.Explanation),
	}
}

// Observe feeds one event to the monitor and returns the resulting
// observation. Events for unregistered users are an error; callers decide
// whether that is fatal (tests) or just logged (live deployments).
func (m *Monitor) Observe(ev service.Event) (Observation, error) {
	shard := m.shardFor(ev.UserID)
	shard.mu.Lock()
	defer shard.mu.Unlock()

	cursor, ok := shard.cursors[ev.UserID]
	if !ok {
		return Observation{}, fmt.Errorf("runtime: user %q is not registered with the monitor", ev.UserID)
	}
	shard.applied[ev.UserID]++
	obs := Observation{From: cursor, To: cursor}

	if ev.Denied {
		m.raise(shard, &obs, deniedAlert(&ev))
		return obs, nil
	}

	transition, matched := m.index.match(cursor, &ev)
	if !matched {
		m.raise(shard, &obs, unmodelledAlert(&ev, cursor))
		return obs, nil
	}

	shard.cursors[ev.UserID] = transition.To
	obs.Matched = true
	obs.Transition = transition
	obs.To = transition.To

	// Alert only when the observed actor is the non-allowed actor the finding
	// concerns: a consented-service flow that merely exposes data to someone
	// else is design-time knowledge (already in the static assessment), while
	// the non-allowed actor actually reading the data is a live disclosure
	// event.
	if finding, ok := shard.findings[ev.UserID][findingKey{tr: transition, actor: ev.Actor}]; ok &&
		finding.Risk >= m.alertAt {
		m.raise(shard, &obs, riskAlert(&ev, finding))
	}
	return obs, nil
}

// raise stamps the alert and records it on the shard and the observation. The
// caller holds shard.mu.
func (m *Monitor) raise(shard *monitorShard, obs *Observation, alert Alert) {
	obs.Alerts = append(obs.Alerts, m.raiseLocked(shard, alert))
}

// raiseLocked stamps the alert with the next monitor-wide sequence number and
// appends it to the shard's alert log. The caller holds shard.mu.
func (m *Monitor) raiseLocked(shard *monitorShard, alert Alert) Alert {
	alert.seq = m.alertSeq.Add(1)
	shard.alerts = append(shard.alerts, alert)
	shard.alertCount[alert.UserID]++
	return alert
}

// observeBatchThreshold is the batch size below which ObserveBatch runs
// inline: spawning goroutines costs more than a handful of map operations.
const observeBatchThreshold = 32

// ObserveBatch feeds a slice of events to the monitor, processing the shards
// they hash to in parallel while preserving the relative order of each
// user's events. The returned observations align with the input slice.
// Events for unregistered users yield a zero Observation and contribute to
// the joined error; the remaining events are still processed.
func (m *Monitor) ObserveBatch(events []service.Event) ([]Observation, error) {
	return m.ObserveBatchContext(context.Background(), events)
}

// ObserveBatchContext is ObserveBatch with cancellation: every per-shard
// worker polls ctx between events and stops applying the remainder of its
// bucket when ctx is done, the fan-out is joined before returning (no
// goroutines leak), and the returned error wraps ctx.Err(). Events skipped
// by cancellation yield a zero Observation and are NOT applied — per-user
// cursor sequences stay prefix-consistent because each user's events live in
// one bucket and are processed in input order until the cutoff.
func (m *Monitor) ObserveBatchContext(ctx context.Context, events []service.Event) ([]Observation, error) {
	out := make([]Observation, len(events))
	errs := make([]error, len(events))
	observe := func(i int) {
		obs, err := m.Observe(events[i])
		out[i] = obs
		if err != nil {
			errs[i] = fmt.Errorf("event %d: %w", i, err)
		}
	}
	if len(m.shards) == 1 || len(events) < observeBatchThreshold {
		for i := range events {
			if err := ctx.Err(); err != nil {
				return out, errors.Join(append(errs[:i:i], err)...)
			}
			observe(i)
		}
		return out, errors.Join(errs...)
	}
	// Same user => same shard => same bucket, processed in input order, so
	// per-user observation sequences are independent of the fan-out.
	buckets := make([][]int, len(m.shards))
	for i, ev := range events {
		idx := m.shardIndexFor(ev.UserID)
		buckets[idx] = append(buckets[idx], i)
	}
	var wg sync.WaitGroup
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				if ctx.Err() != nil {
					return
				}
				observe(i)
			}
		}(bucket)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, errors.Join(append(errs, err)...)
	}
	return out, errors.Join(errs...)
}

// Watch consumes events from the channel until it is closed, observing each
// one. Events for unregistered users are counted but otherwise ignored. It
// returns the number of events observed. Run it in its own goroutine for
// live monitoring:
//
//	events, cancel := cluster.Log().Subscribe(128)
//	defer cancel()
//	go monitor.Watch(events)
func (m *Monitor) Watch(events <-chan service.Event) int {
	n := 0
	for ev := range events {
		n++
		_, _ = m.Observe(ev)
	}
	return n
}

// WatchBatched is Watch with batched ingestion: it blocks for the first
// pending event, drains up to batchSize-1 more without blocking
// (service.NextBatch), and feeds the batch through ObserveBatch so a burst
// of events for different users is absorbed by multiple shards at once. It
// returns the number of events observed.
func (m *Monitor) WatchBatched(events <-chan service.Event, batchSize int) int {
	n := 0
	for {
		batch := service.NextBatch(events, batchSize)
		if len(batch) == 0 {
			return n
		}
		n += len(batch)
		_, _ = m.ObserveBatch(batch)
	}
}

// IngestStats aggregates one batched ingestion: how many events were applied
// and how each resolved. Events + 0 = Matched + Unmodelled + Denied +
// Unregistered; RiskAlerts counts the matched events that additionally raised
// an AlertRisk.
type IngestStats struct {
	// Events is the number of events processed (the whole input unless the
	// context was cancelled mid-batch).
	Events int
	// Matched events advanced their user's cursor along a model transition.
	Matched int
	// Unmodelled events had no matching transition and raised
	// AlertUnmodelled.
	Unmodelled int
	// Denied events were refused by access control and raised AlertDenied.
	Denied int
	// RiskAlerts counts matched events that raised an AlertRisk.
	RiskAlerts int
	// Unregistered events named a user the monitor does not track; they are
	// counted and dropped (the fleet ingestion path must not fail a whole
	// frame over one unknown user).
	Unregistered int
}

// Merge accumulates stats (per-shard buckets, or per-batch node totals).
func (s *IngestStats) Merge(o IngestStats) {
	s.Events += o.Events
	s.Matched += o.Matched
	s.Unmodelled += o.Unmodelled
	s.Denied += o.Denied
	s.RiskAlerts += o.RiskAlerts
	s.Unregistered += o.Unregistered
}

// ingestCancelStride is how many events an ingest worker applies between
// context polls: context.Err takes a lock, so per-event polling would cost
// more than the work it guards.
const ingestCancelStride = 256

// IngestBatch is the monitor's high-throughput ingestion path, built for the
// cluster ingest protocol (internal/cluster): it applies the batch exactly
// like ObserveBatch — same cursor movement, same alerts, byte-identical
// alert log — but returns aggregate counts instead of materialising one
// Observation per event, holds each shard's lock once per bucket instead of
// once per event, and counts events for unregistered users instead of
// failing. Per-user event order is preserved (same user ⇒ same shard ⇒ same
// bucket, processed in input order).
func (m *Monitor) IngestBatch(events []service.Event) IngestStats {
	stats, _ := m.IngestBatchContext(context.Background(), events)
	return stats
}

// IngestBatchContext is IngestBatch with cancellation: workers poll ctx every
// ingestCancelStride events and stop applying the remainder of their bucket
// when ctx is done; the fan-out is joined before returning and the error is
// ctx.Err(). Events skipped by cancellation are not counted in the stats.
func (m *Monitor) IngestBatchContext(ctx context.Context, events []service.Event) (IngestStats, error) {
	var stats IngestStats
	if len(m.shards) == 1 || len(events) < observeBatchThreshold {
		// Sequential path: group runs of events that share a shard so the
		// lock is taken once per run, not once per event.
		var (
			cur    *monitorShard
			locked bool
		)
		for i := range events {
			if i%ingestCancelStride == 0 && ctx.Err() != nil {
				break
			}
			shard := m.shardFor(events[i].UserID)
			if shard != cur {
				if locked {
					cur.mu.Unlock()
				}
				cur = shard
				cur.mu.Lock()
				locked = true
			}
			m.ingestLocked(cur, &events[i], &stats)
		}
		if locked {
			cur.mu.Unlock()
		}
		return stats, ctx.Err()
	}
	// Same user => same shard => same bucket, processed in input order, so
	// per-user sequences are independent of the fan-out (mirrors
	// ObserveBatchContext).
	buckets := make([][]int, len(m.shards))
	for i, ev := range events {
		idx := m.shardIndexFor(ev.UserID)
		buckets[idx] = append(buckets[idx], i)
	}
	perShard := make([]IngestStats, len(m.shards))
	var wg sync.WaitGroup
	for b, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard *monitorShard, idxs []int, st *IngestStats) {
			defer wg.Done()
			shard.mu.Lock()
			defer shard.mu.Unlock()
			for n, i := range idxs {
				if n%ingestCancelStride == 0 && ctx.Err() != nil {
					return
				}
				m.ingestLocked(shard, &events[i], st)
			}
		}(&m.shards[b], bucket, &perShard[b])
	}
	wg.Wait()
	for i := range perShard {
		stats.Merge(perShard[i])
	}
	return stats, ctx.Err()
}

// ingestLocked applies one event to its shard, mirroring Observe's logic
// without building an Observation. The caller holds shard.mu.
func (m *Monitor) ingestLocked(shard *monitorShard, ev *service.Event, stats *IngestStats) {
	stats.Events++
	cursor, ok := shard.cursors[ev.UserID]
	if !ok {
		stats.Unregistered++
		return
	}
	shard.applied[ev.UserID]++
	if ev.Denied {
		stats.Denied++
		m.raiseLocked(shard, deniedAlert(ev))
		return
	}
	transition, matched := m.index.match(cursor, ev)
	if !matched {
		stats.Unmodelled++
		m.raiseLocked(shard, unmodelledAlert(ev, cursor))
		return
	}
	shard.cursors[ev.UserID] = transition.To
	stats.Matched++
	if finding, ok := shard.findings[ev.UserID][findingKey{tr: transition, actor: ev.Actor}]; ok &&
		finding.Risk >= m.alertAt {
		stats.RiskAlerts++
		m.raiseLocked(shard, riskAlert(ev, finding))
	}
}
