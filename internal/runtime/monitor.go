// Package runtime monitors the privacy risks of a running distributed data
// service against its generated privacy model.
//
// The paper's stated goal is to use the models not only "to identify privacy
// risks during the development of an online service" but "also [to] monitor
// the privacy risks during the lifetime of the service (as the users, data,
// and behaviour may change)". The Monitor does exactly that: it keeps, per
// user, a cursor into the privacy LTS; every observed operation (an Event
// from package service) advances the cursor along a matching transition, the
// pre-computed risk assessment for that user is consulted, and an alert is
// raised when the observed transition carries a risk at or above the alert
// threshold or when the behaviour is not part of the model at all
// (unmodelled behaviour — a design/implementation mismatch).
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"privascope/internal/core"
	"privascope/internal/lts"
	"privascope/internal/risk"
	"privascope/internal/service"
)

// AlertKind classifies monitor alerts.
type AlertKind int

// Alert kinds. AlertRisk marks an observed transition whose assessed risk
// meets the threshold; AlertUnmodelled marks an observed operation with no
// matching transition in the model; AlertDenied marks an operation the
// access-control enforcement refused at runtime.
const (
	AlertRisk AlertKind = iota + 1
	AlertUnmodelled
	AlertDenied
)

// String returns the lower-case kind name.
func (k AlertKind) String() string {
	switch k {
	case AlertRisk:
		return "risk"
	case AlertUnmodelled:
		return "unmodelled-behaviour"
	case AlertDenied:
		return "denied-operation"
	default:
		return fmt.Sprintf("alertkind(%d)", int(k))
	}
}

// Alert is one notification raised by the monitor.
type Alert struct {
	Kind   AlertKind
	UserID string
	Event  service.Event
	// Risk and Finding are set for AlertRisk alerts.
	Risk    risk.Level
	Finding risk.Finding
	// Message is a human-readable summary.
	Message string
}

// Observation is the result of feeding one event to the monitor.
type Observation struct {
	// Matched reports whether a transition of the model matched the event.
	Matched bool
	// From and To are the user's privacy state before and after the event
	// (equal when no transition matched).
	From, To lts.StateID
	// Transition is the matched transition when Matched.
	Transition lts.Transition
	// Alerts raised by this observation, if any.
	Alerts []Alert
}

// Monitor tracks per-user privacy state against a privacy LTS. It is safe
// for concurrent use.
type Monitor struct {
	lts      *core.PrivacyLTS
	analyzer *risk.Analyzer
	// alertAt is the minimum risk level that raises an alert.
	alertAt risk.Level

	mu       sync.Mutex
	cursors  map[string]lts.StateID
	profiles map[string]risk.UserProfile
	// findings indexes each user's assessment by transition key.
	findings map[string]map[string]risk.Finding
	alerts   []Alert
}

// Config configures a Monitor.
type Config struct {
	// Analyzer is the disclosure-risk analyzer used to assess users; the
	// default configuration is used when nil.
	Analyzer *risk.Analyzer
	// AlertAt is the minimum risk level that raises an alert; defaults to
	// Medium.
	AlertAt risk.Level
}

// NewMonitor creates a monitor for the generated privacy LTS.
func NewMonitor(p *core.PrivacyLTS, cfg Config) (*Monitor, error) {
	if p == nil {
		return nil, errors.New("runtime: privacy LTS must not be nil")
	}
	analyzer := cfg.Analyzer
	if analyzer == nil {
		var err error
		analyzer, err = risk.NewAnalyzer(risk.Config{})
		if err != nil {
			return nil, err
		}
	}
	alertAt := cfg.AlertAt
	if alertAt == 0 {
		alertAt = risk.LevelMedium
	}
	return &Monitor{
		lts:      p,
		analyzer: analyzer,
		alertAt:  alertAt,
		cursors:  make(map[string]lts.StateID),
		profiles: make(map[string]risk.UserProfile),
		findings: make(map[string]map[string]risk.Finding),
	}, nil
}

// RegisterUser starts tracking a user: their cursor is placed at the initial
// (absolute privacy) state and their profile is assessed against the model so
// observed transitions can be mapped to risk levels cheaply.
func (m *Monitor) RegisterUser(profile risk.UserProfile) error {
	assessment, err := m.analyzer.Analyze(m.lts, profile)
	if err != nil {
		return err
	}
	// Index findings by (transition, at-risk actor) so an observed event by
	// that actor can be mapped to its risk level in O(1).
	index := make(map[string]risk.Finding)
	for _, f := range assessment.Findings {
		key := transitionKey(f.Transition) + "\x00" + f.Actor
		if existing, ok := index[key]; !ok || f.Risk > existing.Risk {
			index[key] = f
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.profiles[profile.ID] = profile
	m.cursors[profile.ID] = m.lts.InitialState()
	m.findings[profile.ID] = index
	return nil
}

// Users returns the IDs of registered users, sorted.
func (m *Monitor) Users() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.profiles))
	for id := range m.profiles {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CurrentState returns the user's current privacy state.
func (m *Monitor) CurrentState(userID string) (lts.StateID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.cursors[userID]
	return id, ok
}

// CurrentVector returns the user's current privacy state vector.
func (m *Monitor) CurrentVector(userID string) (core.StateVector, bool) {
	id, ok := m.CurrentState(userID)
	if !ok {
		return core.StateVector{}, false
	}
	return m.lts.Vector(id)
}

// Alerts returns a copy of every alert raised so far.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// AlertsFor returns the alerts concerning one user.
func (m *Monitor) AlertsFor(userID string) []Alert {
	var out []Alert
	for _, a := range m.Alerts() {
		if a.UserID == userID {
			out = append(out, a)
		}
	}
	return out
}

// Observe feeds one event to the monitor and returns the resulting
// observation. Events for unregistered users are an error; callers decide
// whether that is fatal (tests) or just logged (live deployments).
func (m *Monitor) Observe(ev service.Event) (Observation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	cursor, ok := m.cursors[ev.UserID]
	if !ok {
		return Observation{}, fmt.Errorf("runtime: user %q is not registered with the monitor", ev.UserID)
	}
	obs := Observation{From: cursor, To: cursor}

	if ev.Denied {
		alert := Alert{
			Kind:   AlertDenied,
			UserID: ev.UserID,
			Event:  ev,
			Message: fmt.Sprintf("access-control denied %s by %q on %s.%v",
				ev.Action, ev.Actor, ev.Datastore, ev.Fields),
		}
		m.alerts = append(m.alerts, alert)
		obs.Alerts = append(obs.Alerts, alert)
		return obs, nil
	}

	transition, matched := m.matchTransition(cursor, ev)
	if !matched {
		alert := Alert{
			Kind:   AlertUnmodelled,
			UserID: ev.UserID,
			Event:  ev,
			Message: fmt.Sprintf("observed %s of %v by %q on %q has no matching transition from state %s; the design model and the running system disagree",
				ev.Action, ev.Fields, ev.Actor, ev.Datastore, cursor),
		}
		m.alerts = append(m.alerts, alert)
		obs.Alerts = append(obs.Alerts, alert)
		return obs, nil
	}

	m.cursors[ev.UserID] = transition.To
	obs.Matched = true
	obs.Transition = transition
	obs.To = transition.To

	// Alert only when the observed actor is the non-allowed actor the finding
	// concerns: a consented-service flow that merely exposes data to someone
	// else is design-time knowledge (already in the static assessment), while
	// the non-allowed actor actually reading the data is a live disclosure
	// event.
	if finding, ok := m.findings[ev.UserID][transitionKey(transition)+"\x00"+ev.Actor]; ok &&
		finding.Risk >= m.alertAt {
		alert := Alert{
			Kind:    AlertRisk,
			UserID:  ev.UserID,
			Event:   ev,
			Risk:    finding.Risk,
			Finding: finding,
			Message: fmt.Sprintf("%s-risk disclosure event for user %q: %s", finding.Risk, ev.UserID, finding.Explanation),
		}
		m.alerts = append(m.alerts, alert)
		obs.Alerts = append(obs.Alerts, alert)
	}
	return obs, nil
}

// matchTransition finds an outgoing transition of the cursor state matching
// the event: same action, same actor, same datastore, and the event's fields
// covered by the transition's fields (a read of a subset of the modelled
// fields still matches). Declared flows are preferred over potential reads.
func (m *Monitor) matchTransition(cursor lts.StateID, ev service.Event) (lts.Transition, bool) {
	var potentialMatch lts.Transition
	var havePotential bool
	for _, tr := range m.lts.Graph.Outgoing(cursor) {
		label := core.LabelOf(tr)
		if label == nil {
			continue
		}
		if label.Action != ev.Action || label.Actor != ev.Actor {
			continue
		}
		if label.Datastore != ev.Datastore {
			continue
		}
		if !fieldsCovered(label.Fields, ev.Fields) {
			continue
		}
		if !label.Potential {
			return tr, true
		}
		if !havePotential {
			potentialMatch = tr
			havePotential = true
		}
	}
	return potentialMatch, havePotential
}

// fieldsCovered reports whether every observed field is part of the labelled
// field set.
func fieldsCovered(labelFields, eventFields []string) bool {
	if len(eventFields) == 0 {
		return false
	}
	set := make(map[string]bool, len(labelFields))
	for _, f := range labelFields {
		set[f] = true
	}
	for _, f := range eventFields {
		if !set[f] {
			return false
		}
	}
	return true
}

// transitionKey identifies a transition for the findings index.
func transitionKey(tr lts.Transition) string {
	label := ""
	if tr.Label != nil {
		label = tr.Label.LabelString()
	}
	return strings.Join([]string{string(tr.From), string(tr.To), label}, "\x00")
}

// Watch consumes events from the channel until it is closed, observing each
// one. Events for unregistered users are counted but otherwise ignored. It
// returns the number of events observed. Run it in its own goroutine for
// live monitoring:
//
//	events, cancel := cluster.Log().Subscribe(128)
//	defer cancel()
//	go monitor.Watch(events)
func (m *Monitor) Watch(events <-chan service.Event) int {
	n := 0
	for ev := range events {
		n++
		_, _ = m.Observe(ev)
	}
	return n
}
