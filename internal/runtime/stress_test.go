package runtime_test

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/runtime"
)

// TestMonitorConcurrentStress hammers one monitor per shard count with
// concurrent RegisterUser / Observe / Alerts / Users / CurrentVector calls
// (run under -race in CI). Each user's events are fed in order by a
// dedicated goroutine, so the per-user alert multiset is deterministic; the
// test asserts the full sorted alert set is identical for 1, 4 and 16
// shards, i.e. lock striping never loses, duplicates or reorders a user's
// alerts.
func TestMonitorConcurrentStress(t *testing.T) {
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	const numUsers = 48
	users := make([]string, numUsers)
	for i := range users {
		users[i] = fmt.Sprintf("patient-%d", i)
	}

	runWith := func(shards int) []string {
		monitor, err := runtime.NewMonitor(p, runtime.Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}

		// Phase 1: concurrent registration (the assessment cache and shape
		// index are exercised by racing same-shaped registrations).
		var wg sync.WaitGroup
		for _, id := range users {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				profile := casestudy.PatientProfile()
				profile.ID = id
				if err := monitor.RegisterUser(profile); err != nil {
					t.Error(err)
				}
			}(id)
		}
		wg.Wait()
		// Concurrent first registrations of a brand-new shape may each miss
		// the index memo (the expensive analysis is still single-flighted by
		// the assessment cache), so only the total and "at least one miss,
		// not all misses" are deterministic here.
		hits, misses := monitor.AssessmentCacheStats()
		if hits+misses != numUsers || misses < 1 {
			t.Errorf("shards=%d: cache stats hits=%d misses=%d, want them to sum to %d with >=1 miss",
				shards, hits, misses, numUsers)
		}

		// Phase 2: one goroutine per user replays that user's script while
		// readers poll the aggregate views concurrently.
		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 4; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = monitor.Alerts()
						_ = monitor.Users()
						_, _ = monitor.CurrentVector(users[0])
					}
				}
			}()
		}
		for i, id := range users {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				for _, ev := range medicalServiceEvents(id) {
					if _, err := monitor.Observe(ev); err != nil {
						t.Error(err)
					}
				}
				// Every third user triggers the risky administrator read; the
				// others probe unmodelled behaviour.
				extra := medicalServiceEvents(id)[0]
				if i%3 == 0 {
					extra.Actor = casestudy.ActorAdministrator
					extra.Action = core.ActionRead
					extra.Datastore = casestudy.StoreEHR
					extra.Fields = []string{casestudy.FieldDiagnosis}
				} else {
					extra.Actor = casestudy.ActorResearcher
					extra.Action = core.ActionRead
					extra.Datastore = casestudy.StoreEHR
					extra.Fields = []string{casestudy.FieldDiagnosis}
				}
				if _, err := monitor.Observe(extra); err != nil {
					t.Error(err)
				}
			}(i, id)
		}
		wg.Wait()
		close(stop)
		readers.Wait()

		if got := monitor.Users(); len(got) != numUsers {
			t.Errorf("shards=%d: Users() = %d users, want %d", shards, len(got), numUsers)
		}
		summaries := alertSummaries(monitor.Alerts())
		sort.Strings(summaries)
		return summaries
	}

	baseline := runWith(1)
	if len(baseline) != numUsers {
		t.Fatalf("baseline alert count = %d, want %d (one per user)", len(baseline), numUsers)
	}
	for _, shards := range []int{4, 16} {
		if got := runWith(shards); !reflect.DeepEqual(got, baseline) {
			t.Errorf("shards=%d: sorted alert set differs from single-shard baseline", shards)
		}
	}
}
