package runtime

import (
	"privascope/internal/core"
	"privascope/internal/lts"
	"privascope/internal/service"
)

// The transition index is the monitor's analogue of internal/core's compiled
// model: every per-transition decision that does not depend on the observed
// event is resolved once, when the monitor is created, so that matching an
// event against a state's outgoing transitions is a map lookup plus a couple
// of word operations instead of per-event string scans over labels.
//
// Transitions are bucketed per state by (action, actor, datastore); label
// field sets are packed into bit masks over the universe of fields appearing
// in any label, so "the event's fields are covered by the transition's
// fields" is evMask &^ labelMask == 0. Declared flows are kept apart from
// potential reads because declared matches take precedence, each partition
// preserving the LTS insertion order so the index matches exactly what a
// linear scan over Graph.Outgoing would have matched.

// eventKey buckets transitions by the exact-match components of an event.
type eventKey struct {
	action    core.Action
	actor     string
	datastore string
}

// indexedTransition is one outgoing transition with its precompiled field
// mask.
type indexedTransition struct {
	tr     lts.Transition
	fields fieldMask
}

// fieldMask is a fixed-width bitset over the index's field universe.
type fieldMask []uint64

func (m fieldMask) set(bit int) { m[bit/64] |= 1 << uint(bit%64) }

// covers reports whether every bit of ev is also set in m.
func (m fieldMask) covers(ev fieldMask) bool {
	for w, bits := range ev {
		if bits&^m[w] != 0 {
			return false
		}
	}
	return true
}

// stateEntry partitions one state's outgoing transitions for one event key.
type stateEntry struct {
	declared  []indexedTransition
	potential []indexedTransition
}

// transitionIndex is immutable after newTransitionIndex returns and therefore
// shared lock-free by every monitor shard.
type transitionIndex struct {
	fieldBits map[string]int
	words     int
	// graph resolves cursor state IDs to the dense indices states is
	// addressed by.
	graph *lts.Compiled
	// states[denseState] buckets that state's outgoing transitions, nil for
	// states with none.
	states []map[eventKey]*stateEntry
}

// newTransitionIndex compiles the per-state event-matching tables of the
// privacy LTS, reading the model through its compiled view: labels are
// pre-resolved per edge and each state's outgoing transitions come straight
// from the CSR layout, so no transition or label is re-derived here.
func newTransitionIndex(p *core.PrivacyLTS) *transitionIndex {
	view := p.Compiled()
	c := view.Graph
	ix := &transitionIndex{
		fieldBits: make(map[string]int),
		graph:     c,
		states:    make([]map[eventKey]*stateEntry, c.NumStates()),
	}
	// First pass: the field universe, so mask widths are known up front.
	numEdges := c.NumEdges()
	for e := 0; e < numEdges; e++ {
		label := view.Label(int32(e))
		if label == nil {
			continue
		}
		for _, f := range label.Fields {
			if _, ok := ix.fieldBits[f]; !ok {
				ix.fieldBits[f] = len(ix.fieldBits)
			}
		}
	}
	ix.words = (len(ix.fieldBits) + 63) / 64
	if ix.words == 0 {
		ix.words = 1
	}

	// Second pass: bucket each state's outgoing transitions in insertion
	// order, declared flows apart from potential reads.
	for s := 0; s < c.NumStates(); s++ {
		edges := c.Out(int32(s))
		if len(edges) == 0 {
			continue
		}
		entries := make(map[eventKey]*stateEntry)
		for _, e := range edges {
			label := view.Label(e)
			if label == nil {
				continue
			}
			key := eventKey{action: label.Action, actor: label.Actor, datastore: label.Datastore}
			entry, ok := entries[key]
			if !ok {
				entry = &stateEntry{}
				entries[key] = entry
			}
			mask := make(fieldMask, ix.words)
			for _, f := range label.Fields {
				mask.set(ix.fieldBits[f])
			}
			it := indexedTransition{tr: c.TransitionAt(e), fields: mask}
			if label.Potential {
				entry.potential = append(entry.potential, it)
			} else {
				entry.declared = append(entry.declared, it)
			}
		}
		ix.states[s] = entries
	}
	return ix
}

// match finds the transition leaving cursor that the event takes: same
// action, actor and datastore, and the event's fields covered by the label's
// fields (a read of a subset of the modelled fields still matches). Declared
// flows are preferred over potential reads; within each partition the first
// insertion-order match wins, mirroring a linear scan of Graph.Outgoing.
func (ix *transitionIndex) match(cursor lts.StateID, ev *service.Event) (lts.Transition, bool) {
	if len(ev.Fields) == 0 {
		return lts.Transition{}, false
	}
	s, ok := ix.graph.Index(cursor)
	if !ok {
		return lts.Transition{}, false
	}
	entries := ix.states[s]
	if entries == nil {
		return lts.Transition{}, false
	}
	entry := entries[eventKey{action: ev.Action, actor: ev.Actor, datastore: ev.Datastore}]
	if entry == nil {
		return lts.Transition{}, false
	}
	var stack [4]uint64
	var evMask fieldMask
	if ix.words <= len(stack) {
		evMask = stack[:ix.words]
	} else {
		evMask = make(fieldMask, ix.words)
	}
	for _, f := range ev.Fields {
		bit, ok := ix.fieldBits[f]
		if !ok {
			// A field no label mentions: nothing can cover it.
			return lts.Transition{}, false
		}
		evMask.set(bit)
	}
	for _, it := range entry.declared {
		if it.fields.covers(evMask) {
			return it.tr, true
		}
	}
	for _, it := range entry.potential {
		if it.fields.covers(evMask) {
			return it.tr, true
		}
	}
	return lts.Transition{}, false
}
