package runtime_test

import (
	"context"
	"testing"
	"time"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/risk"
	"privascope/internal/runtime"
	"privascope/internal/service"
)

func surgeryMonitor(t testing.TB) (*core.PrivacyLTS, *runtime.Monitor) {
	t.Helper()
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	monitor, err := runtime.NewMonitor(p, runtime.Config{})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	if err := monitor.RegisterUser(casestudy.PatientProfile()); err != nil {
		t.Fatalf("RegisterUser: %v", err)
	}
	return p, monitor
}

// medicalServiceEvents returns the runtime events of one full execution of
// the medical service for the given user, in flow order (the shared
// case-study fixture).
func medicalServiceEvents(userID string) []service.Event {
	return casestudy.MedicalServiceEvents(userID)
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := runtime.NewMonitor(nil, runtime.Config{}); err == nil {
		t.Error("nil LTS accepted")
	}
}

func TestObserveUnregisteredUser(t *testing.T) {
	_, monitor := surgeryMonitor(t)
	_, err := monitor.Observe(service.Event{UserID: "stranger", Actor: casestudy.ActorDoctor, Action: core.ActionCollect,
		Fields: []string{casestudy.FieldName}})
	if err == nil {
		t.Error("event for unregistered user accepted")
	}
	if got := monitor.Users(); len(got) != 1 || got[0] != "patient-1" {
		t.Errorf("Users() = %v", got)
	}
}

func TestObserveMedicalServiceRun(t *testing.T) {
	p, monitor := surgeryMonitor(t)
	userID := "patient-1"

	initial, ok := monitor.CurrentState(userID)
	if !ok || initial != p.InitialState() {
		t.Fatalf("initial cursor = %v, %v", initial, ok)
	}

	for i, ev := range medicalServiceEvents(userID) {
		obs, err := monitor.Observe(ev)
		if err != nil {
			t.Fatalf("Observe(%d): %v", i, err)
		}
		if !obs.Matched {
			t.Fatalf("event %d (%s by %s) did not match any transition", i, ev.Action, ev.Actor)
		}
		// Running the consented medical service must not raise alerts.
		if len(obs.Alerts) != 0 {
			t.Fatalf("event %d raised alerts: %+v", i, obs.Alerts)
		}
	}

	// After the run, the user's privacy state reflects the nurse knowing the
	// treatment and the administrator being able to read the EHR.
	vec, ok := monitor.CurrentVector(userID)
	if !ok {
		t.Fatal("CurrentVector missing")
	}
	if !vec.Has(casestudy.ActorNurse, casestudy.FieldTreatment) {
		t.Error("nurse should have identified the treatment")
	}
	if !vec.Could(casestudy.ActorAdministrator, casestudy.FieldDiagnosis) {
		t.Error("administrator should be able to identify the diagnosis")
	}
	if len(monitor.Alerts()) != 0 {
		t.Errorf("no alerts expected for the consented service, got %+v", monitor.Alerts())
	}
}

func TestObserveAdministratorReadRaisesAlert(t *testing.T) {
	_, monitor := surgeryMonitor(t)
	userID := "patient-1"
	for _, ev := range medicalServiceEvents(userID) {
		if _, err := monitor.Observe(ev); err != nil {
			t.Fatal(err)
		}
	}

	// The administrator now reads the EHR outside any flow: this matches the
	// potential-read transition and must raise a medium-risk alert (case
	// study IV-A observed at runtime).
	obs, err := monitor.Observe(service.Event{
		Actor: casestudy.ActorAdministrator, Action: core.ActionRead, Datastore: casestudy.StoreEHR,
		UserID: userID, Fields: []string{casestudy.FieldDiagnosis},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Matched {
		t.Fatal("administrator read did not match the potential-read transition")
	}
	if len(obs.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly one", obs.Alerts)
	}
	alert := obs.Alerts[0]
	if alert.Kind != runtime.AlertRisk {
		t.Errorf("alert kind = %v, want risk", alert.Kind)
	}
	if alert.Risk != risk.LevelMedium {
		t.Errorf("alert risk = %v, want medium", alert.Risk)
	}
	if alert.Finding.Actor != casestudy.ActorAdministrator {
		t.Errorf("alert finding actor = %q", alert.Finding.Actor)
	}
	if got := monitor.AlertsFor(userID); len(got) != 1 {
		t.Errorf("AlertsFor = %d alerts", len(got))
	}
	// The cursor advanced: the administrator now HAS the diagnosis.
	vec, _ := monitor.CurrentVector(userID)
	if !vec.Has(casestudy.ActorAdministrator, casestudy.FieldDiagnosis) {
		t.Error("administrator should have identified the diagnosis after the read")
	}
}

func TestObserveUnmodelledBehaviour(t *testing.T) {
	_, monitor := surgeryMonitor(t)
	userID := "patient-1"
	// A researcher reading the raw EHR is neither a declared flow nor a
	// policy-permitted potential read, so it is unmodelled behaviour.
	obs, err := monitor.Observe(service.Event{
		Actor: casestudy.ActorResearcher, Action: core.ActionRead, Datastore: casestudy.StoreEHR,
		UserID: userID, Fields: []string{casestudy.FieldDiagnosis},
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Matched {
		t.Fatal("unmodelled event matched a transition")
	}
	if len(obs.Alerts) != 1 || obs.Alerts[0].Kind != runtime.AlertUnmodelled {
		t.Fatalf("alerts = %+v, want one unmodelled-behaviour alert", obs.Alerts)
	}
	if obs.From != obs.To {
		t.Error("cursor must not move on unmodelled behaviour")
	}
	if runtime.AlertUnmodelled.String() != "unmodelled-behaviour" || runtime.AlertKind(9).String() == "" {
		t.Error("AlertKind.String() misbehaves")
	}
}

func TestObserveDeniedEvent(t *testing.T) {
	_, monitor := surgeryMonitor(t)
	obs, err := monitor.Observe(service.Event{
		Actor: casestudy.ActorNurse, Action: core.ActionRead, Datastore: casestudy.StoreEHR,
		UserID: "patient-1", Fields: []string{casestudy.FieldDiagnosis}, Denied: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Alerts) != 1 || obs.Alerts[0].Kind != runtime.AlertDenied {
		t.Fatalf("alerts = %+v, want one denied-operation alert", obs.Alerts)
	}
}

func TestMonitorWithLiveCluster(t *testing.T) {
	// End-to-end: run the medical service against real HTTP datastore
	// servers, subscribe the monitor to the cluster's event log, then have
	// the administrator read the EHR and observe the alert.
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := runtime.NewMonitor(p, runtime.Config{})
	if err != nil {
		t.Fatal(err)
	}
	profile := casestudy.PatientProfile()
	if err := monitor.RegisterUser(profile); err != nil {
		t.Fatal(err)
	}

	cluster, err := service.StartCluster(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = cluster.Stop(ctx)
	}()

	events, cancel := cluster.Log().Subscribe(128)
	defer cancel()
	done := make(chan int, 1)
	go func() { done <- monitor.Watch(events) }()

	ctx := context.Background()
	userID := profile.ID

	// The doctor records the consultation and the nurse reads the treatment
	// (we drive the stores directly for collect-style knowledge, since
	// collect happens between people, not against a datastore).
	if _, err := monitor.Observe(service.Event{Actor: casestudy.ActorReceptionist, Action: core.ActionCollect,
		UserID: userID, Fields: []string{casestudy.FieldName, casestudy.FieldDateOfBirth}}); err != nil {
		t.Fatal(err)
	}
	receptionist, err := cluster.Client(casestudy.StoreAppointments, casestudy.ActorReceptionist)
	if err != nil {
		t.Fatal(err)
	}
	if err := receptionist.Put(ctx, userID, "schedule appointment", map[string]string{
		casestudy.FieldName:        "Pat Example",
		casestudy.FieldDateOfBirth: "1990-01-01",
		casestudy.FieldAppointment: "2026-06-20 09:00",
	}); err != nil {
		t.Fatal(err)
	}
	doctorAppointments, err := cluster.Client(casestudy.StoreAppointments, casestudy.ActorDoctor)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doctorAppointments.Get(ctx, userID, "prepare consultation", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := monitor.Observe(service.Event{Actor: casestudy.ActorDoctor, Action: core.ActionCollect,
		UserID: userID, Fields: []string{casestudy.FieldMedicalIssues}}); err != nil {
		t.Fatal(err)
	}
	doctorEHR, err := cluster.Client(casestudy.StoreEHR, casestudy.ActorDoctor)
	if err != nil {
		t.Fatal(err)
	}
	if err := doctorEHR.Put(ctx, userID, "record consultation", map[string]string{
		casestudy.FieldName:          "Pat Example",
		casestudy.FieldDateOfBirth:   "1990-01-01",
		casestudy.FieldMedicalIssues: "persistent cough",
		casestudy.FieldDiagnosis:     "bronchitis",
		casestudy.FieldTreatment:     "rest and fluids",
	}); err != nil {
		t.Fatal(err)
	}
	nurse, err := cluster.Client(casestudy.StoreEHR, casestudy.ActorNurse)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nurse.Get(ctx, userID, "administer treatment", []string{casestudy.FieldName, casestudy.FieldTreatment}); err != nil {
		t.Fatal(err)
	}

	// The administrator now browses the EHR.
	admin, err := cluster.Client(casestudy.StoreEHR, casestudy.ActorAdministrator)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Get(ctx, userID, "maintenance", []string{casestudy.FieldDiagnosis}); err != nil {
		t.Fatal(err)
	}

	// Stop the cluster so the log subscription closes and Watch returns.
	ctxStop, cancelStop := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelStop()
	if err := cluster.Stop(ctxStop); err != nil {
		t.Fatal(err)
	}
	cancel()
	observed := <-done
	if observed < 5 {
		t.Errorf("monitor observed %d events, want at least 5", observed)
	}

	alerts := monitor.AlertsFor(userID)
	var riskAlert bool
	for _, a := range alerts {
		if a.Kind == runtime.AlertRisk && a.Event.Actor == casestudy.ActorAdministrator {
			riskAlert = true
			if a.Risk < risk.LevelMedium {
				t.Errorf("administrator alert risk = %v, want >= medium", a.Risk)
			}
		}
	}
	if !riskAlert {
		t.Errorf("expected a risk alert for the administrator's EHR read; alerts: %+v", alerts)
	}
}
