package runtime_test

import (
	"math/rand"
	"reflect"
	"testing"

	"privascope/internal/lts"
	"privascope/internal/proptest"
	"privascope/internal/proptest/scenario"
	"privascope/internal/runtime"
	"privascope/internal/service"
	"privascope/internal/synth"
)

// comparableAlert is an Alert minus its unexported cross-shard sequence
// number, which legitimately differs between shard layouts.
type comparableAlert struct {
	Kind    runtime.AlertKind
	UserID  string
	Event   service.Event
	Risk    interface{}
	Finding interface{}
	Message string
}

func stripAlert(a runtime.Alert) comparableAlert {
	return comparableAlert{Kind: a.Kind, UserID: a.UserID, Event: a.Event,
		Risk: a.Risk, Finding: a.Finding, Message: a.Message}
}

func stripAlerts(alerts []runtime.Alert) []comparableAlert {
	out := make([]comparableAlert, len(alerts))
	for i, a := range alerts {
		out[i] = stripAlert(a)
	}
	return out
}

// comparableObservation is an Observation with its alerts stripped the same
// way.
type comparableObservation struct {
	Matched    bool
	From, To   lts.StateID
	Transition lts.Transition
	Alerts     []comparableAlert
}

func stripObservation(o runtime.Observation) comparableObservation {
	return comparableObservation{Matched: o.Matched, From: o.From, To: o.To,
		Transition: o.Transition, Alerts: stripAlerts(o.Alerts)}
}

// TestPropMonitorShardCountIndependence generalises the fixed-model shard
// determinism test to random scenarios and the batch entry point: feeding
// one random event stream through ObserveBatchContext must yield, for every
// user, the same observation sequence, the same alerts and the same final
// cursor whether the monitor runs 1, 2 or 8 shards.
func TestPropMonitorShardCountIndependence(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		users := make([]string, len(s.Profiles))
		for i, profile := range s.Profiles {
			users[i] = profile.ID
		}
		// At least observeBatchThreshold events, so multi-shard monitors
		// take the parallel fan-out path.
		perUser := 1 + (48+len(users)-1)/len(users)
		stream := synth.RandomEventStream(rng, p, users, perUser)

		type result struct {
			perUserObs    map[string][]comparableObservation
			perUserAlerts map[string][]comparableAlert
			cursors       map[string]lts.StateID
		}
		runWith := func(shards int) result {
			monitor, err := runtime.NewMonitor(p, runtime.Config{Shards: shards})
			if err != nil {
				t.Fatalf("seed %d: NewMonitor(shards=%d): %v", seed, shards, err)
			}
			for _, profile := range s.Profiles {
				if err := monitor.RegisterUser(profile); err != nil {
					t.Fatalf("seed %d: RegisterUser: %v", seed, err)
				}
			}
			obs, err := monitor.ObserveBatch(stream)
			if err != nil {
				t.Fatalf("seed %d: ObserveBatch(shards=%d): %v", seed, shards, err)
			}
			res := result{
				perUserObs:    make(map[string][]comparableObservation),
				perUserAlerts: make(map[string][]comparableAlert),
				cursors:       make(map[string]lts.StateID),
			}
			for i, o := range obs {
				id := stream[i].UserID
				res.perUserObs[id] = append(res.perUserObs[id], stripObservation(o))
			}
			for _, id := range users {
				res.perUserAlerts[id] = stripAlerts(monitor.AlertsFor(id))
				cursor, ok := monitor.CurrentState(id)
				if !ok {
					t.Fatalf("seed %d: user %s has no cursor", seed, id)
				}
				res.cursors[id] = cursor
			}
			return res
		}

		want := runWith(1)
		for _, shards := range []int{2, 8} {
			got := runWith(shards)
			if !reflect.DeepEqual(got.cursors, want.cursors) {
				t.Fatalf("seed %d: cursors with %d shards differ from 1 shard:\n%v\nvs\n%v",
					seed, shards, got.cursors, want.cursors)
			}
			if !reflect.DeepEqual(got.perUserAlerts, want.perUserAlerts) {
				t.Fatalf("seed %d: per-user alerts with %d shards differ from 1 shard", seed, shards)
			}
			if !reflect.DeepEqual(got.perUserObs, want.perUserObs) {
				t.Fatalf("seed %d: per-user observations with %d shards differ from 1 shard", seed, shards)
			}
		}
		return nil
	})
}
