package runtime

import (
	"reflect"
	"strings"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/service"
)

func snapshotTestModel(t *testing.T) *core.PrivacyLTS {
	t.Helper()
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// snapshotTrace is a trace with all three alert shapes plus matched events,
// so the snapshot counters cover every ingest outcome.
func snapshotTrace(userID string) []service.Event {
	return append(casestudy.MedicalServiceEvents(userID),
		service.Event{Actor: casestudy.ActorAdministrator, Action: core.ActionRead, Datastore: casestudy.StoreEHR,
			UserID: userID, Fields: []string{casestudy.FieldDiagnosis}},
		service.Event{Actor: casestudy.ActorResearcher, Action: core.ActionRead, Datastore: casestudy.StoreEHR,
			UserID: userID, Fields: []string{casestudy.FieldDiagnosis}},
		service.Event{Actor: casestudy.ActorNurse, Action: core.ActionRead, Datastore: casestudy.StoreEHR,
			UserID: userID, Fields: []string{casestudy.FieldDiagnosis}, Denied: true},
	)
}

// TestExportImportResumesMidStream is the handoff correctness core: feeding a
// prefix to one monitor, moving the user's snapshot to a second monitor and
// feeding the suffix there must produce exactly the alerts, cursor and
// counters of one uninterrupted monitor — for every split point.
func TestExportImportResumesMidStream(t *testing.T) {
	p := snapshotTestModel(t)
	profile := casestudy.PatientProfile()
	trace := snapshotTrace(profile.ID)

	whole, err := NewMonitor(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.RegisterUser(profile); err != nil {
		t.Fatal(err)
	}
	whole.IngestBatch(trace)
	wantSnap, ok := whole.ExportUser(profile.ID)
	if !ok {
		t.Fatal("uninterrupted monitor lost the user")
	}

	for split := 0; split <= len(trace); split++ {
		first, err := NewMonitor(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		second, err := NewMonitor(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := first.RegisterUser(profile); err != nil {
			t.Fatal(err)
		}
		first.IngestBatch(trace[:split])
		snap, ok := first.ExportUser(profile.ID)
		if !ok {
			t.Fatalf("split %d: user missing from first monitor", split)
		}
		if !first.RemoveUser(profile.ID) {
			t.Fatalf("split %d: RemoveUser found nothing", split)
		}
		if err := second.ImportUser(snap); err != nil {
			t.Fatalf("split %d: import: %v", split, err)
		}
		second.IngestBatch(trace[split:])

		got, ok := second.ExportUser(profile.ID)
		if !ok {
			t.Fatalf("split %d: user missing from second monitor", split)
		}
		if !reflect.DeepEqual(got, wantSnap) {
			t.Errorf("split %d: final snapshot %+v, want %+v", split, got, wantSnap)
		}
		merged := append(stripSeq(first.Alerts()), stripSeq(second.Alerts())...)
		if want := stripSeq(whole.Alerts()); !reflect.DeepEqual(merged, want) {
			t.Errorf("split %d: merged alerts differ:\n got %+v\nwant %+v", split, merged, want)
		}
	}
}

// stripSeq drops the unexported cross-shard sequence number, which
// legitimately differs between monitors.
func stripSeq(alerts []Alert) []Alert {
	out := append([]Alert(nil), alerts...)
	for i := range out {
		out[i].seq = 0
	}
	return out
}

func TestExportUserCounters(t *testing.T) {
	p := snapshotTestModel(t)
	profile := casestudy.PatientProfile()
	m, err := NewMonitor(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterUser(profile); err != nil {
		t.Fatal(err)
	}
	snap, ok := m.ExportUser(profile.ID)
	if !ok || snap.Applied != 0 || snap.Alerts != 0 || snap.State != p.InitialState() {
		t.Fatalf("fresh snapshot = %+v (ok=%v), want zero counters at the initial state", snap, ok)
	}
	trace := snapshotTrace(profile.ID)
	m.IngestBatch(trace)
	snap, _ = m.ExportUser(profile.ID)
	if snap.Applied != int64(len(trace)) {
		t.Errorf("Applied = %d, want %d", snap.Applied, len(trace))
	}
	if want := int64(len(m.AlertsFor(profile.ID))); snap.Alerts != want {
		t.Errorf("Alerts = %d, want %d", snap.Alerts, want)
	}
	if snap.Profile.ID != profile.ID {
		t.Errorf("snapshot profile ID = %q", snap.Profile.ID)
	}
}

func TestImportUserValidation(t *testing.T) {
	p := snapshotTestModel(t)
	profile := casestudy.PatientProfile()
	m, err := NewMonitor(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	good := UserSnapshot{Profile: profile, State: p.InitialState()}
	cases := []struct {
		name string
		mut  func(*UserSnapshot)
		want string
	}{
		{"no user ID", func(s *UserSnapshot) { s.Profile.ID = "" }, "no user ID"},
		{"unknown state", func(s *UserSnapshot) { s.State = "no-such-state" }, "not in the model"},
		{"negative applied", func(s *UserSnapshot) { s.Applied = -1 }, "negative cursor"},
		{"negative alerts", func(s *UserSnapshot) { s.Alerts = -1 }, "negative cursor"},
		{"bad sensitivity", func(s *UserSnapshot) {
			s.Profile.Sensitivities = map[string]float64{"x": 1.5}
		}, "outside [0,1]"},
	}
	for _, tc := range cases {
		snap := good
		tc.mut(&snap)
		err := m.ImportUser(snap)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if m.RemoveUser(profile.ID) {
		t.Error("a rejected import left the user registered")
	}
	if err := m.ImportUser(good); err != nil {
		t.Fatalf("valid import rejected: %v", err)
	}
	if got := m.Users(); len(got) != 1 || got[0] != profile.ID {
		t.Fatalf("Users() after import = %v", got)
	}
}

func TestRemoveUserKeepsAlertHistory(t *testing.T) {
	p := snapshotTestModel(t)
	profile := casestudy.PatientProfile()
	m, err := NewMonitor(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterUser(profile); err != nil {
		t.Fatal(err)
	}
	m.IngestBatch(snapshotTrace(profile.ID))
	raised := len(m.AlertsFor(profile.ID))
	if raised == 0 {
		t.Fatal("trace raised no alerts")
	}
	if !m.RemoveUser(profile.ID) {
		t.Fatal("RemoveUser found nothing")
	}
	if m.RemoveUser(profile.ID) {
		t.Error("second RemoveUser reported success")
	}
	if got := len(m.AlertsFor(profile.ID)); got != raised {
		t.Errorf("alert history shrank from %d to %d on removal", raised, got)
	}
	if _, ok := m.CurrentState(profile.ID); ok {
		t.Error("removed user still has a cursor")
	}
	// Events for the removed user now count as unregistered, not observed.
	stats := m.IngestBatch(snapshotTrace(profile.ID)[:1])
	if stats.Unregistered != 1 {
		t.Errorf("post-removal ingest stats = %+v, want 1 unregistered", stats)
	}
}
