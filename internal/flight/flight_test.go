package flight

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoComputesOncePerKey(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	const callers = 32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v; want 42, nil", v, err)
			}
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("computation ran %d times, want 1", got)
	}
	if g.Size() != 1 {
		t.Errorf("Size = %d, want 1", g.Size())
	}
	if g.Misses() != 1 || g.Hits() != callers-1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", g.Hits(), g.Misses(), callers-1)
	}
}

func TestDoDistinctKeysDoNotShare(t *testing.T) {
	var g Group[int, int]
	for key := 0; key < 10; key++ {
		v, err := g.Do(context.Background(), key, func(context.Context) (int, error) {
			return key * key, nil
		})
		if err != nil || v != key*key {
			t.Fatalf("Do(%d) = %d, %v", key, v, err)
		}
	}
	if g.Size() != 10 {
		t.Errorf("Size = %d, want 10", g.Size())
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	if _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if g.Size() != 0 {
		t.Fatalf("failed entry was cached (size %d)", g.Size())
	}
	v, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("retry after error = %d, %v; want 7, nil", v, err)
	}
}

func TestWaiterCancellationDoesNotAffectLeader(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	started := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Do(ctx, "k", func(context.Context) (int, error) {
		t.Error("waiter must not compute")
		return 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v, want nil", err)
	}
	if v, ok := g.Cached("k"); !ok || v != 1 {
		t.Fatalf("Cached = %d, %v; want 1, true", v, ok)
	}
}

func TestLeaderCancellationElectsNewLeader(t *testing.T) {
	var g Group[string, int]
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := g.Do(leaderCtx, "k", func(ctx context.Context) (int, error) {
			close(started)
			<-ctx.Done()
			return 0, ctx.Err()
		})
		leaderDone <- err
	}()
	<-started

	// This waiter has a live context: when the leader is cancelled it must
	// retry, become the new leader, and succeed.
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			return 99, nil
		})
		if err != nil || v != 99 {
			t.Errorf("waiter after leader cancellation = %d, %v; want 99, nil", v, err)
		}
	}()

	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	<-waiterDone
}

func TestLeaderPanicDoesNotWedgeKey(t *testing.T) {
	var g Group[string, int]

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader's panic was swallowed")
			}
		}()
		_, _ = g.Do(context.Background(), "k", func(context.Context) (int, error) {
			panic("boom")
		})
	}()

	// The key must be usable again: the panicked entry was forgotten and its
	// done channel closed, so this neither blocks nor returns stale state.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			return 11, nil
		})
		if err != nil || v != 11 {
			t.Errorf("Do after panic = %d, %v; want 11, nil", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do after a panicked leader blocked: key is wedged")
	}
}

func TestForget(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	compute := func(context.Context) (int, error) {
		calls.Add(1)
		return 5, nil
	}
	if _, err := g.Do(context.Background(), "k", compute); err != nil {
		t.Fatal(err)
	}
	g.Forget("k")
	if _, err := g.Do(context.Background(), "k", compute); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("computation ran %d times after Forget, want 2", calls.Load())
	}
}
