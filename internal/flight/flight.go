// Package flight provides a context-aware, generics-based single-flight
// result cache: the building block behind every "compute once, share with all
// concurrent callers" structure in this module (the risk assessment cache,
// the equivalence-class index, the value-risk scenario cache and the public
// Engine's model cache).
//
// It differs from a plain sync.Once-per-entry cache in two ways that matter
// for a context-first API:
//
//   - Waiters are cancellable. A caller blocked on another caller's in-flight
//     computation returns its own ctx.Err() as soon as its context is done;
//     it never has to wait for work it no longer wants.
//   - Failures are not cached. When the computing caller (the "leader")
//     returns an error — in particular its own ctx.Err() when it was
//     cancelled mid-computation — the entry is forgotten, so one caller's
//     cancellation can never poison the cache for everyone else. Waiters
//     whose contexts are still live simply retry, electing a new leader.
//
// Successful results are cached forever and shared; callers must treat them
// as immutable.
package flight

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// entry is one in-flight or completed computation.
type entry[V any] struct {
	done chan struct{} // closed when val/err are set
	val  V
	err  error
}

// Group is a cache of single-flighted computations keyed by K. The zero value
// is ready to use. A Group must not be copied after first use.
type Group[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]

	hits   atomic.Int64
	misses atomic.Int64
}

// Do returns the cached value for key, computing it at most once across
// concurrent callers. The first caller for a key (the leader) runs fn with
// its own context; every other caller blocks until the leader finishes or the
// waiter's own context is done, whichever comes first.
//
// A successful result is cached and shared (callers must not mutate it). A
// failed computation is forgotten: the leader returns its own error, and the
// next caller recomputes. A waiter never returns the leader's error — when
// the leader fails, a waiter with a live context retries (electing or
// awaiting a new leader, recomputing a deterministic failure itself), and a
// cancelled waiter returns its own ctx.Err(); a cancelled caller therefore
// never fails an uncancelled one.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func(ctx context.Context) (V, error)) (V, error) {
	var zero V
	for {
		g.mu.Lock()
		if g.entries == nil {
			g.entries = make(map[K]*entry[V])
		}
		e, ok := g.entries[key]
		if !ok {
			// This caller is the leader.
			e = &entry[V]{done: make(chan struct{})}
			g.entries[key] = e
			g.mu.Unlock()
			g.misses.Add(1)
			g.lead(ctx, key, e, fn)
			return e.val, e.err
		}
		g.mu.Unlock()

		select {
		case <-e.done:
			if e.err == nil {
				g.hits.Add(1)
				return e.val, nil
			}
			// The leader failed. Give up only if we are cancelled ourselves;
			// otherwise loop to elect a new leader (or wait on one).
			if err := ctx.Err(); err != nil {
				return zero, err
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// lead runs the computation as the leader of entry e. The cleanup — forget
// the entry on failure, then wake the waiters — runs in a defer so that a
// panicking fn cannot wedge the key: without it, e.done would never close
// and every current and future caller for the key would block forever. A
// panic is recorded as an error for the waiters (they retry or fail by
// their own contexts) while the panic itself propagates unrecovered to the
// leader's caller.
func (g *Group[K, V]) lead(ctx context.Context, key K, e *entry[V], fn func(ctx context.Context) (V, error)) {
	completed := false
	defer func() {
		if !completed {
			e.err = fmt.Errorf("flight: computation panicked")
		}
		if e.err != nil {
			g.mu.Lock()
			// Only forget the entry if it is still ours: a concurrent
			// Forget+recompute could have replaced it.
			if cur, ok := g.entries[key]; ok && cur == e {
				delete(g.entries, key)
			}
			g.mu.Unlock()
		}
		close(e.done)
	}()
	e.val, e.err = fn(ctx)
	completed = true
}

// Cached returns the completed value for key without computing anything.
// It reports false while the key is absent or still being computed.
func (g *Group[K, V]) Cached(key K) (V, bool) {
	var zero V
	g.mu.Lock()
	e, ok := g.entries[key]
	g.mu.Unlock()
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return zero, false
		}
		return e.val, true
	default:
		return zero, false
	}
}

// Forget drops the cached entry for key, if any; the next Do recomputes. An
// in-flight computation is not interrupted: its result is still returned to
// the callers already waiting on it, but it is not re-inserted into the
// cache — after a Forget, only a subsequent Do's computation is cached.
func (g *Group[K, V]) Forget(key K) {
	g.mu.Lock()
	delete(g.entries, key)
	g.mu.Unlock()
}

// Size returns the number of entries, counting in-flight computations.
func (g *Group[K, V]) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.entries)
}

// Hits returns how many Do calls were served from a completed entry.
func (g *Group[K, V]) Hits() int64 { return g.hits.Load() }

// Misses returns how many Do calls ran the computation themselves.
func (g *Group[K, V]) Misses() int64 { return g.misses.Load() }
