package casestudy

import (
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/anonymize"
	"privascope/internal/core"
	"privascope/internal/risk"
)

func TestSurgeryModelIsValid(t *testing.T) {
	m := Surgery()
	if err := m.Validate(); err != nil {
		t.Fatalf("Surgery model invalid: %v", err)
	}
	stats := m.Stats()
	if stats.Actors != 5 {
		t.Errorf("actors = %d, want 5 (paper Section II-B)", stats.Actors)
	}
	if stats.Datastores != 3 {
		t.Errorf("datastores = %d, want 3", stats.Datastores)
	}
	if stats.Services != 2 {
		t.Errorf("services = %d, want 2", stats.Services)
	}
	if len(m.ServiceFlows(ServiceMedical)) != 6 {
		t.Errorf("medical service flows = %d, want 6", len(m.ServiceFlows(ServiceMedical)))
	}
	if len(m.ServiceFlows(ServiceResearch)) != 3 {
		t.Errorf("research service flows = %d, want 3", len(m.ServiceFlows(ServiceResearch)))
	}
}

func TestSurgeryBaseFieldCountMatchesPaper(t *testing.T) {
	// The paper counts six data fields (Name, Date of Birth, Appointment,
	// Medical Issues, Diagnosis, Treatment Information) and five actors,
	// giving 60 Boolean state variables. Our field universe additionally
	// carries the pseudonymised forms stored in the anonymised EHR, so we
	// check the base-field count here and the 60-variable computation on the
	// base vocabulary.
	m := Surgery()
	base := 0
	for _, f := range m.FieldUniverse() {
		if !isAnon(f) {
			base++
		}
	}
	if base != 6 {
		t.Errorf("base fields = %d, want 6", base)
	}
	vocab := core.NewVocabulary(m.ActorIDs(), []string{
		FieldName, FieldDateOfBirth, FieldAppointment, FieldMedicalIssues, FieldDiagnosis, FieldTreatment,
	})
	if got := vocab.NumVariables(); got != 60 {
		t.Errorf("state variables over base fields = %d, want 60", got)
	}
}

func isAnon(field string) bool {
	return len(field) > 5 && field[len(field)-5:] == "_anon"
}

func TestSurgeryLTSGenerates(t *testing.T) {
	p, err := core.Generate(Surgery())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected generation warnings: %v", p.Warnings)
	}
	stats := p.Stats()
	if stats.States == 0 || stats.Transitions == 0 {
		t.Fatalf("empty LTS: %+v", stats)
	}
	// The administrator never takes part in a medical-service flow but could
	// identify the diagnosis once it reaches the EHR.
	finals := p.FindStates(func(v core.StateVector) bool { return v.Has(ActorNurse, FieldTreatment) })
	if len(finals) == 0 {
		t.Fatal("medical service never completes")
	}
	for _, id := range finals {
		if !p.Could(id, ActorAdministrator, FieldDiagnosis) {
			t.Errorf("state %s: administrator should be able to identify the diagnosis", id)
		}
	}
}

func TestCaseStudyAMediumThenLow(t *testing.T) {
	// The headline of case study IV-A: with the original policy the
	// administrator's potential read of the EHR carries Medium risk for the
	// diagnosis; after the policy change it is reduced (the diagnosis finding
	// disappears and the residual administrator risk is Low).
	analyzer := risk.MustAnalyzer(risk.Config{})
	profile := PatientProfile()

	before, err := core.Generate(Surgery())
	if err != nil {
		t.Fatal(err)
	}
	beforeAssessment, err := analyzer.Analyze(before, profile)
	if err != nil {
		t.Fatal(err)
	}
	if got := beforeAssessment.MaxRiskFor(ActorAdministrator); got != risk.LevelMedium {
		t.Errorf("administrator risk before mitigation = %v, want medium", got)
	}
	var diagnosisFinding bool
	for _, f := range beforeAssessment.FindingsFor(ActorAdministrator) {
		if f.DrivingField == FieldDiagnosis && f.Datastore == StoreEHR {
			diagnosisFinding = true
			if f.Risk != risk.LevelMedium {
				t.Errorf("diagnosis finding risk = %v, want medium", f.Risk)
			}
		}
	}
	if !diagnosisFinding {
		t.Error("no administrator finding for the diagnosis on the EHR")
	}

	after, err := core.Generate(SurgeryWithPolicy(MitigatedSurgeryACL()))
	if err != nil {
		t.Fatal(err)
	}
	afterAssessment, err := analyzer.Analyze(after, profile)
	if err != nil {
		t.Fatal(err)
	}
	if got := afterAssessment.MaxRiskFor(ActorAdministrator); got > risk.LevelLow {
		t.Errorf("administrator risk after mitigation = %v, want at most low", got)
	}
	for _, f := range afterAssessment.FindingsFor(ActorAdministrator) {
		if f.DrivingField == FieldDiagnosis && f.Datastore == StoreEHR {
			t.Error("diagnosis finding should disappear after the policy change")
		}
	}

	changes := risk.Compare(beforeAssessment, afterAssessment)
	var found bool
	for _, c := range changes {
		if c.Actor == ActorAdministrator && c.Field == FieldDiagnosis {
			found = true
			if c.Before != risk.LevelMedium {
				t.Errorf("change before = %v, want medium", c.Before)
			}
			if c.After >= risk.LevelMedium {
				t.Errorf("change after = %v, want below medium", c.After)
			}
		}
	}
	if !found {
		t.Error("Compare did not report the administrator/diagnosis change")
	}
}

func TestMitigationChangesOnlyAdministratorAccess(t *testing.T) {
	scope := accesscontrol.Scope{
		Actors: []string{ActorReceptionist, ActorDoctor, ActorNurse, ActorAdministrator, ActorResearcher},
		Datastores: map[string][]string{
			StoreEHR: {FieldName, FieldDateOfBirth, FieldMedicalIssues, FieldDiagnosis, FieldTreatment},
		},
	}
	changes := accesscontrol.Diff(SurgeryACL(), MitigatedSurgeryACL(), scope)
	if len(changes) == 0 {
		t.Fatal("mitigation produced no access changes")
	}
	for _, c := range changes {
		if c.Actor != ActorAdministrator {
			t.Errorf("mitigation changed access for %q: %s", c.Actor, c)
		}
		if c.Field == FieldName && c.Perm == accesscontrol.PermissionRead {
			t.Errorf("mitigation should keep the administrator's read access to the name field: %s", c)
		}
	}
}

func TestPatientProfile(t *testing.T) {
	p := PatientProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
	if !p.Consented(ServiceMedical) || p.Consented(ServiceResearch) {
		t.Error("profile consent wrong")
	}
	if p.Sensitivity(FieldDiagnosis) != risk.SensitivityHigh {
		t.Error("diagnosis sensitivity should be high")
	}
	if p.Sensitivity(FieldAppointment) >= risk.SensitivityLow {
		t.Error("appointment should fall back to the default sensitivity")
	}
}

func TestSurgeryDOT(t *testing.T) {
	m := Surgery()
	out := m.DOT()
	if len(out) == 0 {
		t.Fatal("empty DOT output")
	}
	if _, err := m.ServiceDOT(ServiceMedical); err != nil {
		t.Errorf("ServiceDOT(medical): %v", err)
	}
	if _, err := m.ServiceDOT(ServiceResearch); err != nil {
		t.Errorf("ServiceDOT(research): %v", err)
	}
}

func TestMetricsModelIsValid(t *testing.T) {
	m := Metrics()
	if err := m.Validate(); err != nil {
		t.Fatalf("Metrics model invalid: %v", err)
	}
	if len(m.ServiceFlows(ServiceMetricsStudy)) != 5 {
		t.Errorf("metrics-study flows = %d, want 5", len(m.ServiceFlows(ServiceMetricsStudy)))
	}
	// The researcher may read the anonymised store but not the raw store.
	policy := m.Policy
	if !policy.Allows(ActorResearcher, StoreAnonMetrics, "weight_anon", accesscontrol.PermissionRead) {
		t.Error("researcher should read weight_anon")
	}
	if policy.Allows(ActorResearcher, StoreMetrics, FieldWeight, accesscontrol.PermissionRead) {
		t.Error("researcher must not read the raw weight")
	}
}

func TestTableIRecords(t *testing.T) {
	tbl := TableIRecords()
	if tbl.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6", tbl.NumRows())
	}
	ok, err := anonymize.IsKAnonymous(tbl, []string{FieldAge, FieldHeight}, 2)
	if err != nil || !ok {
		t.Errorf("Table I records should be 2-anonymous: %v, %v", ok, err)
	}
	v, err := tbl.Value(0, FieldWeight)
	if err != nil || v != anonymize.Num(100) {
		t.Errorf("first weight = %v, %v", v, err)
	}
}

func TestRawMetricsGeneraliseToTableI(t *testing.T) {
	raw := RawMetricsRecords()
	anon, err := TableIGeneralisation().Apply(raw)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := TableIRecords()
	if anon.NumRows() != want.NumRows() {
		t.Fatalf("row mismatch: %d vs %d", anon.NumRows(), want.NumRows())
	}
	for r := 0; r < want.NumRows(); r++ {
		for _, col := range []string{FieldAge, FieldHeight, FieldWeight} {
			got, err := anon.Value(r, col)
			if err != nil {
				t.Fatal(err)
			}
			expected, err := want.Value(r, col)
			if err != nil {
				t.Fatal(err)
			}
			if got != expected {
				t.Errorf("row %d column %s = %v, want %v", r, col, got, expected)
			}
		}
	}
}

func TestResearchPolicy(t *testing.T) {
	p := ResearchPolicy()
	if err := p.Validate(); err != nil {
		t.Fatalf("policy invalid: %v", err)
	}
	if p.TargetField != FieldWeight || p.Closeness != 5 || p.Confidence != 0.9 {
		t.Errorf("policy = %+v, want weight/5kg/90%%", p)
	}
}

func TestMetricsLTSGenerates(t *testing.T) {
	p, err := core.GenerateWithOptions(Metrics(), core.Options{FlowOrdering: core.OrderDataDriven})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
	// There is a state where the researcher has read only the anonymised
	// weight, and one where they have read all three anonymised fields.
	onlyWeight := p.FindStates(func(v core.StateVector) bool {
		return v.Has(ActorResearcher, "weight_anon") &&
			!v.Has(ActorResearcher, "age_anon") && !v.Has(ActorResearcher, "height_anon")
	})
	if len(onlyWeight) == 0 {
		t.Error("no state where the researcher has read only weight_anon")
	}
	all := p.FindStates(func(v core.StateVector) bool {
		return v.Has(ActorResearcher, "weight_anon") &&
			v.Has(ActorResearcher, "age_anon") && v.Has(ActorResearcher, "height_anon")
	})
	if len(all) == 0 {
		t.Error("no state where the researcher has read every anonymised field")
	}
}
