package casestudy

import (
	"privascope/internal/accesscontrol"
)

// Role names used by the RBAC variant of the surgery policy.
const (
	RoleReception  = "reception-staff"
	RoleClinician  = "clinical-staff"
	RoleNursing    = "nursing-staff"
	RoleSysAdmin   = "system-administrator"
	RoleResearcher = "research-staff"
)

// SurgeryRBAC returns a role-based formulation of the surgery's original
// access-control policy, equivalent in effect to SurgeryACL. The paper
// assumes "traditional access control lists and role-based access control";
// this fixture exercises the RBAC half: the generated privacy LTS and the
// risk analysis results are identical to the ACL-based model (see the tests
// in this package).
func SurgeryRBAC() *accesscontrol.RBAC {
	rw := []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}
	r := []accesscontrol.Permission{accesscontrol.PermissionRead}
	rwd := []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite, accesscontrol.PermissionDelete}
	rd := []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionDelete}
	all := []string{accesscontrol.AllFields}

	rbac := accesscontrol.NewRBAC()
	mustAddRole(rbac, accesscontrol.Role{Name: RoleReception, Grants: []accesscontrol.Grant{
		{Datastore: StoreAppointments, Fields: all, Permissions: rw, Reason: "appointment booking"},
	}})
	mustAddRole(rbac, accesscontrol.Role{Name: RoleClinician, Grants: []accesscontrol.Grant{
		{Datastore: StoreAppointments, Fields: all, Permissions: r, Reason: "consultation preparation"},
		{Datastore: StoreEHR, Fields: all, Permissions: rw, Reason: "clinical record keeping"},
		{Datastore: StoreAnonEHR, Fields: all, Permissions: rw, Reason: "research extract preparation"},
	}})
	mustAddRole(rbac, accesscontrol.Role{Name: RoleNursing, Grants: []accesscontrol.Grant{
		{Datastore: StoreEHR, Fields: []string{FieldName, FieldTreatment}, Permissions: r, Reason: "treatment administration"},
	}})
	mustAddRole(rbac, accesscontrol.Role{Name: RoleSysAdmin, Grants: []accesscontrol.Grant{
		{Datastore: StoreAppointments, Fields: all, Permissions: rwd, Reason: "system maintenance"},
		{Datastore: StoreEHR, Fields: all, Permissions: rwd, Reason: "system maintenance"},
		{Datastore: StoreAnonEHR, Fields: all, Permissions: rd, Reason: "system maintenance"},
	}})
	mustAddRole(rbac, accesscontrol.Role{Name: RoleResearcher, Grants: []accesscontrol.Grant{
		{Datastore: StoreAnonEHR, Fields: all, Permissions: r, Reason: "medical research"},
	}})

	mustAssign(rbac, ActorReceptionist, RoleReception)
	mustAssign(rbac, ActorDoctor, RoleClinician)
	mustAssign(rbac, ActorNurse, RoleNursing)
	mustAssign(rbac, ActorAdministrator, RoleSysAdmin)
	mustAssign(rbac, ActorResearcher, RoleResearcher)
	return rbac
}

func mustAddRole(rbac *accesscontrol.RBAC, role accesscontrol.Role) {
	if err := rbac.AddRole(role); err != nil {
		panic(err)
	}
}

func mustAssign(rbac *accesscontrol.RBAC, actor, role string) {
	if err := rbac.Assign(actor, role); err != nil {
		panic(err)
	}
}
