package casestudy

import (
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/risk"
)

func TestSurgeryRBACEquivalentToACL(t *testing.T) {
	acl := SurgeryACL()
	rbac := SurgeryRBAC()

	// Decision-level equivalence over every (actor, store, field, perm)
	// combination of the model.
	model := Surgery()
	perms := []accesscontrol.Permission{
		accesscontrol.PermissionRead, accesscontrol.PermissionWrite, accesscontrol.PermissionDelete,
	}
	for _, store := range model.Datastores {
		for _, field := range store.Schema.FieldNames() {
			for _, actor := range model.ActorIDs() {
				for _, perm := range perms {
					a := acl.Allows(actor, store.ID, field, perm)
					r := rbac.Allows(actor, store.ID, field, perm)
					if a != r {
						t.Errorf("ACL and RBAC disagree: %s %s %s.%s: acl=%v rbac=%v",
							actor, perm, store.ID, field, a, r)
					}
				}
			}
		}
	}
}

func TestSurgeryRBACProducesSameLTSAndRisk(t *testing.T) {
	aclLTS, err := core.Generate(Surgery())
	if err != nil {
		t.Fatal(err)
	}
	rbacLTS, err := core.Generate(SurgeryWithPolicy(SurgeryRBAC()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rbacLTS.Warnings) != 0 {
		t.Errorf("RBAC model warnings: %v", rbacLTS.Warnings)
	}
	if aclLTS.Stats() != rbacLTS.Stats() {
		t.Errorf("LTS stats differ: acl=%+v rbac=%+v", aclLTS.Stats(), rbacLTS.Stats())
	}

	analyzer := risk.MustAnalyzer(risk.Config{})
	profile := PatientProfile()
	aclAssessment, err := analyzer.Analyze(aclLTS, profile)
	if err != nil {
		t.Fatal(err)
	}
	rbacAssessment, err := analyzer.Analyze(rbacLTS, profile)
	if err != nil {
		t.Fatal(err)
	}
	if aclAssessment.OverallRisk != rbacAssessment.OverallRisk {
		t.Errorf("overall risk differs: acl=%v rbac=%v", aclAssessment.OverallRisk, rbacAssessment.OverallRisk)
	}
	if aclAssessment.MaxRiskFor(ActorAdministrator) != rbacAssessment.MaxRiskFor(ActorAdministrator) {
		t.Errorf("administrator risk differs: acl=%v rbac=%v",
			aclAssessment.MaxRiskFor(ActorAdministrator), rbacAssessment.MaxRiskFor(ActorAdministrator))
	}
	if len(aclAssessment.Findings) != len(rbacAssessment.Findings) {
		t.Errorf("finding counts differ: acl=%d rbac=%d",
			len(aclAssessment.Findings), len(rbacAssessment.Findings))
	}
}

func TestSurgeryRBACRoleAssignments(t *testing.T) {
	rbac := SurgeryRBAC()
	if got := rbac.RolesOf(ActorDoctor); len(got) != 1 || got[0] != RoleClinician {
		t.Errorf("RolesOf(doctor) = %v", got)
	}
	if got := len(rbac.Actors()); got != 5 {
		t.Errorf("actors with roles = %d, want 5", got)
	}
}
