package casestudy

import (
	"privascope/internal/accesscontrol"
	"privascope/internal/anonymize"
	"privascope/internal/dataflow"
	"privascope/internal/pseudorisk"
	"privascope/internal/schema"
)

// Identifiers of the physical-attributes research model (case study IV-B).
const (
	ActorParticipant = "participant"
	ActorClinician   = "clinician"
	ActorDataManager = "data_manager"
	// ActorResearcher is shared with the surgery model ("researcher").

	StoreMetrics     = "health_metrics"
	StoreAnonMetrics = "anon_metrics"

	ServiceHealthCheck  = "health-check"
	ServiceMetricsStudy = "metrics-study"

	FieldAge    = "age"
	FieldHeight = "height"
	FieldWeight = "weight"
)

// MetricsACL returns the access-control policy of the physical-attributes
// scenario: the clinician maintains the raw metrics store, the data manager
// reads it to produce the anonymised store, and the researcher can only read
// the anonymised store — they have "access to this data but ... not ... to
// the original data".
func MetricsACL() *accesscontrol.ACL {
	rw := []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}
	r := []accesscontrol.Permission{accesscontrol.PermissionRead}
	all := []string{accesscontrol.AllFields}
	return accesscontrol.MustACL(
		accesscontrol.Grant{Actor: ActorClinician, Datastore: StoreMetrics, Fields: all, Permissions: rw,
			Reason: "health check records"},
		accesscontrol.Grant{Actor: ActorDataManager, Datastore: StoreMetrics, Fields: all, Permissions: r,
			Reason: "prepare anonymised study data"},
		accesscontrol.Grant{Actor: ActorDataManager, Datastore: StoreAnonMetrics, Fields: all, Permissions: rw,
			Reason: "prepare anonymised study data"},
		accesscontrol.Grant{Actor: ActorResearcher, Datastore: StoreAnonMetrics, Fields: all, Permissions: r,
			Reason: "study analysis"},
	)
}

// Metrics builds the data-flow model of case study IV-B: physical attributes
// are collected during a health check, 2-anonymised by a data manager, and
// the anonymised fields are read one by one by a researcher. Reading the
// anonymised fields in different orders produces LTS states in which the
// researcher has seen different subsets of the quasi-identifiers — exactly
// the progression of Table I.
func Metrics() *dataflow.Model {
	return MetricsWithPolicy(MetricsACL())
}

// MetricsWithPolicy builds the physical-attributes model with a
// caller-supplied policy.
func MetricsWithPolicy(policy accesscontrol.Policy) *dataflow.Model {
	metricsSchema := schema.MustSchema("health_metrics",
		schema.Field{Name: FieldAge, Category: schema.CategoryQuasiIdentifier, Description: "age in years"},
		schema.Field{Name: FieldHeight, Category: schema.CategoryQuasiIdentifier, Description: "height in cm"},
		schema.Field{Name: FieldWeight, Category: schema.CategorySensitive, Description: "weight in kg"},
	)
	anonSchema := schema.MustSchema("anon_metrics",
		schema.Field{Name: schema.AnonName(FieldAge), Category: schema.CategoryQuasiIdentifier, Pseudonymised: true},
		schema.Field{Name: schema.AnonName(FieldHeight), Category: schema.CategoryQuasiIdentifier, Pseudonymised: true},
		schema.Field{Name: schema.AnonName(FieldWeight), Category: schema.CategorySensitive, Pseudonymised: true},
	)

	b := dataflow.NewBuilder("physical-attributes-study", dataflow.Actor{ID: ActorParticipant, Name: "Participant"})
	b.AddActors(
		dataflow.Actor{ID: ActorClinician, Name: "Clinician", Description: "records physical attributes during a health check"},
		dataflow.Actor{ID: ActorDataManager, Name: "Data Manager", Description: "produces the 2-anonymised study dataset"},
		dataflow.Actor{ID: ActorResearcher, Name: "Researcher", Description: "analyses the anonymised dataset"},
	)
	b.AddDatastore(schema.Datastore{ID: StoreMetrics, Name: "Health Metrics", Schema: metricsSchema})
	b.AddDatastore(schema.Datastore{ID: StoreAnonMetrics, Name: "Anonymised Health Metrics", Schema: anonSchema, Anonymised: true})
	b.AddService(dataflow.Service{ID: ServiceHealthCheck, Name: "Health Check",
		Purpose: "collect physical attributes"})
	b.AddService(dataflow.Service{ID: ServiceMetricsStudy, Name: "Metrics Study",
		Purpose: "statistical research on anonymised physical attributes"})

	b.Flow(ServiceHealthCheck, ActorParticipant, ActorClinician,
		[]string{FieldAge, FieldHeight, FieldWeight}, "health check")
	b.Flow(ServiceHealthCheck, ActorClinician, StoreMetrics,
		[]string{FieldAge, FieldHeight, FieldWeight}, "record metrics")

	b.Flow(ServiceMetricsStudy, StoreMetrics, ActorDataManager,
		[]string{FieldAge, FieldHeight, FieldWeight}, "prepare study extract")
	b.Flow(ServiceMetricsStudy, ActorDataManager, StoreAnonMetrics,
		[]string{FieldAge, FieldHeight, FieldWeight}, "2-anonymise")
	// The researcher reads the anonymised fields one at a time; under
	// data-driven ordering these reads interleave freely, producing states
	// where different subsets of the quasi-identifiers have been seen.
	b.Flow(ServiceMetricsStudy, StoreAnonMetrics, ActorResearcher,
		[]string{schema.AnonName(FieldWeight)}, "analyse weights")
	b.Flow(ServiceMetricsStudy, StoreAnonMetrics, ActorResearcher,
		[]string{schema.AnonName(FieldHeight)}, "analyse heights")
	b.Flow(ServiceMetricsStudy, StoreAnonMetrics, ActorResearcher,
		[]string{schema.AnonName(FieldAge)}, "analyse ages")

	b.WithPolicy(policy)
	return b.MustBuild()
}

// ResearchPolicy returns the violation policy of case study IV-B: "the
// researcher being able to predict an individual's weight to within 5kg with
// at least 90% confidence".
func ResearchPolicy() pseudorisk.Policy {
	return pseudorisk.Policy{
		TargetField: FieldWeight,
		Closeness:   5,
		Confidence:  0.9,
		Description: "the researcher must not predict an individual's weight to within 5 kg with at least 90% confidence",
	}
}

// TableIRecords returns the six 2-anonymised sample records of the paper's
// Table I: age in 10-year bins, height in 20-cm bins, weight exact.
func TableIRecords() *anonymize.Table {
	t := anonymize.MustTable(
		anonymize.Column{Name: FieldAge, Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: FieldHeight, Role: anonymize.RoleQuasiIdentifier, Unit: "cm"},
		anonymize.Column{Name: FieldWeight, Role: anonymize.RoleSensitive, Unit: "kg"},
	)
	rows := []struct {
		age, height anonymize.Value
		weight      float64
	}{
		{anonymize.Interval(30, 40), anonymize.Interval(180, 200), 100},
		{anonymize.Interval(30, 40), anonymize.Interval(180, 200), 102},
		{anonymize.Interval(20, 30), anonymize.Interval(180, 200), 110},
		{anonymize.Interval(20, 30), anonymize.Interval(180, 200), 111},
		{anonymize.Interval(20, 30), anonymize.Interval(160, 180), 80},
		{anonymize.Interval(20, 30), anonymize.Interval(160, 180), 110},
	}
	for _, r := range rows {
		t.MustAddRow(r.age, r.height, anonymize.Num(r.weight))
	}
	return t
}

// RawMetricsRecords returns a plausible raw (pre-anonymisation) version of
// the Table I records, used by the examples and benchmarks that exercise the
// k-anonymiser end to end before computing value risks.
func RawMetricsRecords() *anonymize.Table {
	t := anonymize.MustTable(
		anonymize.Column{Name: FieldAge, Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: FieldHeight, Role: anonymize.RoleQuasiIdentifier, Unit: "cm"},
		anonymize.Column{Name: FieldWeight, Role: anonymize.RoleSensitive, Unit: "kg"},
	)
	rows := [][3]float64{
		{34, 185, 100},
		{38, 192, 102},
		{25, 183, 110},
		{28, 199, 111},
		{22, 165, 80},
		{27, 171, 110},
	}
	for _, r := range rows {
		t.MustAddRow(anonymize.Num(r[0]), anonymize.Num(r[1]), anonymize.Num(r[2]))
	}
	return t
}

// TableIGeneralisation returns the generalisation spec that turns
// RawMetricsRecords into the 2-anonymised form of Table I: 10-year age bins
// and 20-cm height bins aligned to 0 and 160 respectively.
func TableIGeneralisation() anonymize.Spec {
	return anonymize.Spec{
		FieldAge:    anonymize.NumericBinning{Width: 10},
		FieldHeight: anonymize.NumericBinning{Width: 20},
	}
}
