// Package casestudy provides the concrete models of the paper's evaluation
// (Section IV): the doctors'-surgery healthcare service of Fig. 1 used by
// case study IV-A, and the physical-attributes research scenario with the
// six 2-anonymised records of Table I used by case study IV-B / Fig. 4.
//
// Examples, benchmarks, the CLI tools, and EXPERIMENTS.md all build on the
// fixtures in this package so that the reproduced numbers come from a single
// source of truth.
package casestudy

import (
	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/risk"
	"privascope/internal/schema"
	"privascope/internal/service"
)

// Identifiers of the doctors'-surgery model (Fig. 1).
const (
	// Actors.
	ActorPatient       = "patient"
	ActorReceptionist  = "receptionist"
	ActorDoctor        = "doctor"
	ActorNurse         = "nurse"
	ActorAdministrator = "administrator"
	ActorResearcher    = "researcher"

	// Datastores.
	StoreAppointments = "appointments"
	StoreEHR          = "ehr"
	StoreAnonEHR      = "anon_ehr"

	// Services.
	ServiceMedical  = "medical-service"
	ServiceResearch = "medical-research-service"

	// Fields.
	FieldName          = "name"
	FieldDateOfBirth   = "date_of_birth"
	FieldAppointment   = "appointment"
	FieldMedicalIssues = "medical_issues"
	FieldDiagnosis     = "diagnosis"
	FieldTreatment     = "treatment"
)

// SurgeryACL returns the original access-control policy of the doctors'
// surgery: clinical staff have the access the medical service needs, the
// administrator holds broad maintenance access to every store (the source of
// the unwanted-disclosure risk of case study IV-A), and the researcher may
// only read the anonymised EHR.
func SurgeryACL() *accesscontrol.ACL {
	rw := []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}
	r := []accesscontrol.Permission{accesscontrol.PermissionRead}
	all := []string{accesscontrol.AllFields}
	return accesscontrol.MustACL(
		accesscontrol.Grant{Actor: ActorReceptionist, Datastore: StoreAppointments, Fields: all, Permissions: rw,
			Reason: "appointment booking"},
		accesscontrol.Grant{Actor: ActorDoctor, Datastore: StoreAppointments, Fields: all, Permissions: r,
			Reason: "consultation preparation"},
		accesscontrol.Grant{Actor: ActorDoctor, Datastore: StoreEHR, Fields: all, Permissions: rw,
			Reason: "clinical record keeping"},
		accesscontrol.Grant{Actor: ActorDoctor, Datastore: StoreAnonEHR, Fields: all, Permissions: rw,
			Reason: "research extract preparation"},
		accesscontrol.Grant{Actor: ActorNurse, Datastore: StoreEHR, Fields: []string{FieldName, FieldTreatment}, Permissions: r,
			Reason: "treatment administration"},
		accesscontrol.Grant{Actor: ActorAdministrator, Datastore: StoreAppointments, Fields: all,
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite, accesscontrol.PermissionDelete},
			Reason:      "system maintenance"},
		accesscontrol.Grant{Actor: ActorAdministrator, Datastore: StoreEHR, Fields: all,
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite, accesscontrol.PermissionDelete},
			Reason:      "system maintenance"},
		accesscontrol.Grant{Actor: ActorAdministrator, Datastore: StoreAnonEHR, Fields: all,
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionDelete},
			Reason:      "system maintenance"},
		accesscontrol.Grant{Actor: ActorResearcher, Datastore: StoreAnonEHR, Fields: all, Permissions: r,
			Reason: "medical research"},
	)
}

// MitigatedSurgeryACL returns the access policy after the mitigation of case
// study IV-A: the administrator's access to the EHR is restricted to the
// name field needed for record maintenance, so the sensitive clinical fields
// are no longer exposed ("The access policies were changed accordingly and
// the risk level was reduced to Low for this event").
func MitigatedSurgeryACL() *accesscontrol.ACL {
	return SurgeryACL().Restrict(ActorAdministrator, StoreEHR, []string{FieldName})
}

// Surgery builds the doctors'-surgery data-flow model of Fig. 1 with the
// original access-control policy attached.
func Surgery() *dataflow.Model {
	return SurgeryWithPolicy(SurgeryACL())
}

// SurgeryWithPolicy builds the doctors'-surgery model with a caller-supplied
// access-control policy, so mitigations can be explored.
func SurgeryWithPolicy(policy accesscontrol.Policy) *dataflow.Model {
	appointmentsSchema := schema.MustSchema("appointments",
		schema.Field{Name: FieldName, Category: schema.CategoryIdentifier, Description: "patient full name"},
		schema.Field{Name: FieldDateOfBirth, Category: schema.CategoryQuasiIdentifier, Description: "patient date of birth"},
		schema.Field{Name: FieldAppointment, Category: schema.CategoryStandard, Description: "appointment slot"},
	)
	ehrSchema := schema.MustSchema("ehr",
		schema.Field{Name: FieldName, Category: schema.CategoryIdentifier},
		schema.Field{Name: FieldDateOfBirth, Category: schema.CategoryQuasiIdentifier},
		schema.Field{Name: FieldMedicalIssues, Category: schema.CategorySensitive, Description: "presented medical issues"},
		schema.Field{Name: FieldDiagnosis, Category: schema.CategorySensitive, Description: "clinical diagnosis"},
		schema.Field{Name: FieldTreatment, Category: schema.CategorySensitive, Description: "treatment information"},
	)
	anonEHRSchema := schema.MustSchema("anon_ehr",
		schema.Field{Name: schema.AnonName(FieldDateOfBirth), Category: schema.CategoryQuasiIdentifier, Pseudonymised: true},
		schema.Field{Name: schema.AnonName(FieldMedicalIssues), Category: schema.CategorySensitive, Pseudonymised: true},
		schema.Field{Name: schema.AnonName(FieldDiagnosis), Category: schema.CategorySensitive, Pseudonymised: true},
		schema.Field{Name: schema.AnonName(FieldTreatment), Category: schema.CategorySensitive, Pseudonymised: true},
	)

	b := dataflow.NewBuilder("doctors-surgery", dataflow.Actor{ID: ActorPatient, Name: "Patient",
		Description: "the data subject whose privacy the model tracks"})
	b.AddActors(
		dataflow.Actor{ID: ActorReceptionist, Name: "Receptionist", Description: "books appointments"},
		dataflow.Actor{ID: ActorDoctor, Name: "Doctor", Description: "conducts consultations and maintains the EHR"},
		dataflow.Actor{ID: ActorNurse, Name: "Nurse", Description: "administers prescribed treatment"},
		dataflow.Actor{ID: ActorAdministrator, Name: "Administrator", Description: "maintains the IT systems and prepares research extracts"},
		dataflow.Actor{ID: ActorResearcher, Name: "Researcher", Description: "performs medical research on anonymised records"},
	)
	b.AddDatastore(schema.Datastore{ID: StoreAppointments, Name: "Appointments", Schema: appointmentsSchema})
	b.AddDatastore(schema.Datastore{ID: StoreEHR, Name: "Electronic Health Records", Schema: ehrSchema})
	b.AddDatastore(schema.Datastore{ID: StoreAnonEHR, Name: "Anonymised EHR", Schema: anonEHRSchema, Anonymised: true})
	b.AddService(dataflow.Service{ID: ServiceMedical, Name: "Medical Service",
		Purpose: "provide medical care to the patient"})
	b.AddService(dataflow.Service{ID: ServiceResearch, Name: "Medical Research Service",
		Purpose: "support medical research on anonymised health records"})

	// Medical Service (Fig. 1, left): book an appointment, consult, record,
	// and administer treatment.
	b.Flow(ServiceMedical, ActorPatient, ActorReceptionist,
		[]string{FieldName, FieldDateOfBirth}, "book appointment")
	b.AuthoredFlow(ServiceMedical, ActorReceptionist, StoreAppointments,
		[]string{FieldName, FieldDateOfBirth, FieldAppointment}, []string{FieldAppointment}, "schedule appointment")
	b.Flow(ServiceMedical, StoreAppointments, ActorDoctor,
		[]string{FieldName, FieldDateOfBirth, FieldAppointment}, "prepare consultation")
	b.Flow(ServiceMedical, ActorPatient, ActorDoctor,
		[]string{FieldMedicalIssues}, "consultation")
	b.AuthoredFlow(ServiceMedical, ActorDoctor, StoreEHR,
		[]string{FieldName, FieldDateOfBirth, FieldMedicalIssues, FieldDiagnosis, FieldTreatment},
		[]string{FieldDiagnosis, FieldTreatment}, "record consultation")
	b.Flow(ServiceMedical, StoreEHR, ActorNurse,
		[]string{FieldName, FieldTreatment}, "administer treatment")

	// Medical Research Service (Fig. 1, right): the doctor (as clinical data
	// custodian) extracts and pseudonymises the records, and the researcher
	// analyses the anonymised EHR. The administrator takes part in no
	// service flow — their access to the datastores exists purely for system
	// maintenance, which is exactly the unwanted-disclosure risk of case
	// study IV-A.
	b.Flow(ServiceResearch, StoreEHR, ActorDoctor,
		[]string{FieldDateOfBirth, FieldMedicalIssues, FieldDiagnosis, FieldTreatment}, "prepare research extract")
	b.Flow(ServiceResearch, ActorDoctor, StoreAnonEHR,
		[]string{FieldDateOfBirth, FieldMedicalIssues, FieldDiagnosis, FieldTreatment}, "pseudonymise research data")
	b.Flow(ServiceResearch, StoreAnonEHR, ActorResearcher,
		[]string{schema.AnonName(FieldDateOfBirth), schema.AnonName(FieldMedicalIssues),
			schema.AnonName(FieldDiagnosis), schema.AnonName(FieldTreatment)}, "medical research")

	b.WithPolicy(policy)
	return b.MustBuild()
}

// PatientProfile returns the user profile of case study IV-A: the user agreed
// to use the Medical Service but not the Medical Research Service, and is
// highly sensitive about the Diagnosis field.
func PatientProfile() risk.UserProfile {
	return risk.UserProfile{
		ID:                "patient-1",
		ConsentedServices: []string{ServiceMedical},
		Sensitivities: map[string]float64{
			FieldDiagnosis:                      risk.SensitivityHigh,
			FieldMedicalIssues:                  risk.SensitivityMedium,
			FieldTreatment:                      risk.SensitivityMedium,
			schema.AnonName(FieldDiagnosis):     risk.SensitivityMedium,
			schema.AnonName(FieldMedicalIssues): risk.SensitivityLow,
			schema.AnonName(FieldTreatment):     risk.SensitivityLow,
			schema.AnonName(FieldDateOfBirth):   risk.SensitivityLow,
		},
		DefaultSensitivity: 0.1,
	}
}

// MedicalServiceEvents returns the runtime events of one full execution of
// the Medical Service for the given user, in declared flow order. Each event
// matches a declared transition of the generated privacy LTS without raising
// alerts, so the sequence doubles as the runtime monitor's hot-path fixture
// (tests, benchmarks and the privaserve golden trace all share it).
func MedicalServiceEvents(userID string) []service.Event {
	return []service.Event{
		{Actor: ActorReceptionist, Action: core.ActionCollect, UserID: userID,
			Fields: []string{FieldName, FieldDateOfBirth}},
		{Actor: ActorReceptionist, Action: core.ActionCreate, Datastore: StoreAppointments, UserID: userID,
			Fields: []string{FieldName, FieldDateOfBirth, FieldAppointment}},
		{Actor: ActorDoctor, Action: core.ActionRead, Datastore: StoreAppointments, UserID: userID,
			Fields: []string{FieldName, FieldDateOfBirth, FieldAppointment}},
		{Actor: ActorDoctor, Action: core.ActionCollect, UserID: userID,
			Fields: []string{FieldMedicalIssues}},
		{Actor: ActorDoctor, Action: core.ActionCreate, Datastore: StoreEHR, UserID: userID,
			Fields: []string{FieldName, FieldDateOfBirth, FieldMedicalIssues, FieldDiagnosis, FieldTreatment}},
		{Actor: ActorNurse, Action: core.ActionRead, Datastore: StoreEHR, UserID: userID,
			Fields: []string{FieldName, FieldTreatment}},
	}
}
