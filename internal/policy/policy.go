// Package policy models service privacy policies and user consent, and
// checks a generated privacy LTS against them.
//
// The paper positions this as the complement of risk analysis: "A system's
// behaviour should be matched against its own privacy policy ... all of these
// solutions only check if a system behaves according to its stated privacy
// policy (our LTS can be similarly analysed)" (Section V). This package
// provides that analysis: a ServicePolicy declares which actors may perform
// which actions on which fields for which purposes, a ConsentRegistry records
// what each user agreed to, and the Checker walks the LTS reporting every
// transition the stated policy does not cover.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"privascope/internal/core"
	"privascope/internal/lts"
)

// Statement is one clause of a service privacy policy: the named actor may
// perform the listed actions on the listed fields for the listed purposes.
// Empty Purposes means "any purpose within the service".
type Statement struct {
	Actor    string        `json:"actor"`
	Actions  []core.Action `json:"actions"`
	Fields   []string      `json:"fields"`
	Purposes []string      `json:"purposes,omitempty"`
}

// Validate checks the statement's identifiers and actions.
func (s Statement) Validate() error {
	if strings.TrimSpace(s.Actor) == "" {
		return errors.New("policy: statement actor must not be empty")
	}
	if len(s.Actions) == 0 {
		return fmt.Errorf("policy: statement for actor %q lists no actions", s.Actor)
	}
	for _, a := range s.Actions {
		if !a.Valid() {
			return fmt.Errorf("policy: statement for actor %q has invalid action %d", s.Actor, int(a))
		}
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("policy: statement for actor %q lists no fields", s.Actor)
	}
	return nil
}

// covers reports whether the statement permits the (action, field, purpose)
// triple.
func (s Statement) covers(actor string, action core.Action, field, purpose string) bool {
	if s.Actor != actor {
		return false
	}
	actionOK := false
	for _, a := range s.Actions {
		if a == action {
			actionOK = true
			break
		}
	}
	if !actionOK {
		return false
	}
	fieldOK := false
	for _, f := range s.Fields {
		if f == "*" || f == field {
			fieldOK = true
			break
		}
	}
	if !fieldOK {
		return false
	}
	if len(s.Purposes) == 0 {
		return true
	}
	for _, p := range s.Purposes {
		if p == purpose {
			return true
		}
	}
	return false
}

// ServicePolicy is the stated privacy policy of one service: what the service
// tells the data subject its actors will do with their data.
type ServicePolicy struct {
	// Service is the service ID the policy belongs to.
	Service string `json:"service"`
	// Description is the human-readable policy summary shown to users.
	Description string `json:"description,omitempty"`
	// Statements are the permitted handling clauses.
	Statements []Statement `json:"statements"`
}

// Validate checks the policy and its statements.
func (p ServicePolicy) Validate() error {
	if strings.TrimSpace(p.Service) == "" {
		return errors.New("policy: service policy must name a service")
	}
	for i, s := range p.Statements {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("policy: service %q statement %d: %w", p.Service, i, err)
		}
	}
	return nil
}

// Permits reports whether the policy allows the actor to perform the action
// on the field for the purpose.
func (p ServicePolicy) Permits(actor string, action core.Action, field, purpose string) bool {
	for _, s := range p.Statements {
		if s.covers(actor, action, field, purpose) {
			return true
		}
	}
	return false
}

// PolicySet groups the service policies of a system.
type PolicySet struct {
	policies map[string]ServicePolicy
}

// NewPolicySet builds a set from the given policies.
func NewPolicySet(policies ...ServicePolicy) (*PolicySet, error) {
	set := &PolicySet{policies: make(map[string]ServicePolicy, len(policies))}
	for _, p := range policies {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := set.policies[p.Service]; dup {
			return nil, fmt.Errorf("policy: duplicate policy for service %q", p.Service)
		}
		set.policies[p.Service] = p
	}
	return set, nil
}

// MustPolicySet is like NewPolicySet but panics on error; for fixtures.
func MustPolicySet(policies ...ServicePolicy) *PolicySet {
	set, err := NewPolicySet(policies...)
	if err != nil {
		panic(err)
	}
	return set
}

// Policy returns the policy of the named service.
func (s *PolicySet) Policy(service string) (ServicePolicy, bool) {
	p, ok := s.policies[service]
	return p, ok
}

// Services returns the service IDs with a policy, sorted.
func (s *PolicySet) Services() []string {
	out := make([]string, 0, len(s.policies))
	for id := range s.policies {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Consent records that a user agreed to a service's policy at a point in
// time. Withdrawn consent keeps the record but sets Withdrawn.
type Consent struct {
	UserID    string    `json:"user_id"`
	Service   string    `json:"service"`
	GrantedAt time.Time `json:"granted_at"`
	Withdrawn bool      `json:"withdrawn,omitempty"`
}

// ConsentRegistry tracks user consent per service. The zero value is not
// usable; create registries with NewConsentRegistry. It is not safe for
// concurrent mutation.
type ConsentRegistry struct {
	consents map[string]map[string]Consent // user -> service -> consent
}

// NewConsentRegistry returns an empty registry.
func NewConsentRegistry() *ConsentRegistry {
	return &ConsentRegistry{consents: make(map[string]map[string]Consent)}
}

// Grant records consent by the user to the service.
func (r *ConsentRegistry) Grant(userID, service string, at time.Time) error {
	if strings.TrimSpace(userID) == "" || strings.TrimSpace(service) == "" {
		return errors.New("policy: consent requires a user and a service")
	}
	if r.consents[userID] == nil {
		r.consents[userID] = make(map[string]Consent)
	}
	r.consents[userID][service] = Consent{UserID: userID, Service: service, GrantedAt: at}
	return nil
}

// Withdraw marks the user's consent to the service as withdrawn.
func (r *ConsentRegistry) Withdraw(userID, service string) error {
	c, ok := r.consents[userID][service]
	if !ok {
		return fmt.Errorf("policy: user %q has no consent for service %q to withdraw", userID, service)
	}
	c.Withdrawn = true
	r.consents[userID][service] = c
	return nil
}

// HasConsent reports whether the user currently consents to the service.
func (r *ConsentRegistry) HasConsent(userID, service string) bool {
	c, ok := r.consents[userID][service]
	return ok && !c.Withdrawn
}

// ConsentedServices returns the services the user currently consents to,
// sorted.
func (r *ConsentRegistry) ConsentedServices(userID string) []string {
	var out []string
	for service, c := range r.consents[userID] {
		if !c.Withdrawn {
			out = append(out, service)
		}
	}
	sort.Strings(out)
	return out
}

// Violation is one transition of the privacy LTS that the stated service
// policies do not permit.
type Violation struct {
	// Transition is the offending transition.
	Transition lts.Transition
	// Action, Actor, Fields, Purpose and Service are copied from the label.
	Action  core.Action
	Actor   string
	Fields  []string
	Purpose string
	Service string
	// Reason explains why the transition is not covered.
	Reason string
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s(%s) by %s for %q in service %q: %s",
		v.Action, strings.Join(v.Fields, ", "), v.Actor, v.Purpose, v.Service, v.Reason)
}

// ComplianceReport is the outcome of checking an LTS against the stated
// policies.
type ComplianceReport struct {
	// Compliant is true when no violations were found.
	Compliant bool
	// Violations lists every uncovered transition.
	Violations []Violation
	// CheckedTransitions is the number of declared-flow transitions checked.
	CheckedTransitions int
}

// Checker verifies that the behaviour captured by a privacy LTS is covered by
// the system's stated service policies.
type Checker struct {
	policies *PolicySet
	// IncludePotential controls whether policy-permitted reads outside the
	// declared flows (potential reads) are also reported; they are not part
	// of the designed behaviour, so by default only declared flows are
	// checked.
	IncludePotential bool
}

// NewChecker returns a checker for the given policy set.
func NewChecker(policies *PolicySet) *Checker {
	return &Checker{policies: policies}
}

// Check walks every reachable transition of the LTS and reports the ones the
// stated policies do not permit.
func (c *Checker) Check(p *core.PrivacyLTS) (*ComplianceReport, error) {
	if p == nil {
		return nil, errors.New("policy: privacy LTS must not be nil")
	}
	if c.policies == nil {
		return nil, errors.New("policy: checker has no policy set")
	}
	reachable, err := p.Graph.Reachable()
	if err != nil {
		return nil, err
	}
	report := &ComplianceReport{Compliant: true}
	for _, tr := range p.Graph.Transitions() {
		if !reachable[tr.From] {
			continue
		}
		label := core.LabelOf(tr)
		if label == nil {
			continue
		}
		if label.Potential && !c.IncludePotential {
			continue
		}
		report.CheckedTransitions++
		violation, ok := c.checkTransition(tr, label)
		if !ok {
			continue
		}
		report.Violations = append(report.Violations, violation)
		report.Compliant = false
	}
	return report, nil
}

func (c *Checker) checkTransition(tr lts.Transition, label *core.TransitionLabel) (Violation, bool) {
	makeViolation := func(reason string) Violation {
		return Violation{
			Transition: tr,
			Action:     label.Action,
			Actor:      label.Actor,
			Fields:     label.FieldSet(),
			Purpose:    label.Purpose,
			Service:    label.Service,
			Reason:     reason,
		}
	}
	if label.Service == "" {
		return makeViolation("the action is not part of any declared service"), true
	}
	servicePolicy, ok := c.policies.Policy(label.Service)
	if !ok {
		return makeViolation(fmt.Sprintf("service %q has no stated privacy policy", label.Service)), true
	}
	for _, field := range label.Fields {
		if !servicePolicy.Permits(label.Actor, label.Action, field, label.Purpose) {
			return makeViolation(fmt.Sprintf(
				"the stated policy of %q does not permit %s to %s field %q for purpose %q",
				label.Service, label.Actor, label.Action, field, label.Purpose)), true
		}
	}
	return Violation{}, false
}

// PolicyFromModelFlows derives a service policy that exactly covers the
// declared flows of the service in the model-generated LTS. It is a starting
// point for system designers: generate the policy that matches today's
// behaviour, review it, and tighten it.
func PolicyFromModelFlows(p *core.PrivacyLTS, service string) ServicePolicy {
	out := ServicePolicy{Service: service}
	seen := make(map[string]bool)
	for _, tr := range p.Graph.Transitions() {
		label := core.LabelOf(tr)
		if label == nil || label.Potential || label.Service != service {
			continue
		}
		key := label.Actor + "|" + label.Action.String() + "|" + strings.Join(label.Fields, ",") + "|" + label.Purpose
		if seen[key] {
			continue
		}
		seen[key] = true
		statement := Statement{
			Actor:   label.Actor,
			Actions: []core.Action{label.Action},
			Fields:  label.FieldSet(),
		}
		if label.Purpose != "" {
			statement.Purposes = []string{label.Purpose}
		}
		out.Statements = append(out.Statements, statement)
	}
	sort.Slice(out.Statements, func(i, j int) bool {
		si, sj := out.Statements[i], out.Statements[j]
		if si.Actor != sj.Actor {
			return si.Actor < sj.Actor
		}
		return si.Actions[0] < sj.Actions[0]
	})
	return out
}
