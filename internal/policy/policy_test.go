package policy_test

import (
	"strings"
	"testing"
	"time"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/policy"
)

func surgeryLTS(t testing.TB) *core.PrivacyLTS {
	t.Helper()
	p, err := core.GenerateWithOptions(casestudy.Surgery(), core.Options{PotentialReads: core.PotentialReadsOff})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return p
}

func TestStatementValidate(t *testing.T) {
	good := policy.Statement{Actor: "doctor", Actions: []core.Action{core.ActionRead}, Fields: []string{"*"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid statement rejected: %v", err)
	}
	tests := []struct {
		name string
		s    policy.Statement
	}{
		{"empty actor", policy.Statement{Actions: []core.Action{core.ActionRead}, Fields: []string{"x"}}},
		{"no actions", policy.Statement{Actor: "a", Fields: []string{"x"}}},
		{"invalid action", policy.Statement{Actor: "a", Actions: []core.Action{core.Action(99)}, Fields: []string{"x"}}},
		{"no fields", policy.Statement{Actor: "a", Actions: []core.Action{core.ActionRead}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.s.Validate(); err == nil {
				t.Error("invalid statement accepted")
			}
		})
	}
}

func TestServicePolicyPermits(t *testing.T) {
	p := policy.ServicePolicy{
		Service: "medical-service",
		Statements: []policy.Statement{
			{Actor: "doctor", Actions: []core.Action{core.ActionCollect, core.ActionCreate},
				Fields: []string{"name", "diagnosis"}, Purposes: []string{"consultation", "record consultation"}},
			{Actor: "nurse", Actions: []core.Action{core.ActionRead}, Fields: []string{"*"}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tests := []struct {
		actor   string
		action  core.Action
		field   string
		purpose string
		want    bool
	}{
		{"doctor", core.ActionCollect, "name", "consultation", true},
		{"doctor", core.ActionCollect, "name", "marketing", false},
		{"doctor", core.ActionRead, "name", "consultation", false},
		{"doctor", core.ActionCreate, "treatment", "record consultation", false},
		{"nurse", core.ActionRead, "treatment", "anything", true},
		{"nurse", core.ActionCreate, "treatment", "anything", false},
		{"admin", core.ActionRead, "name", "", false},
	}
	for _, tt := range tests {
		if got := p.Permits(tt.actor, tt.action, tt.field, tt.purpose); got != tt.want {
			t.Errorf("Permits(%s, %s, %s, %s) = %v, want %v", tt.actor, tt.action, tt.field, tt.purpose, got, tt.want)
		}
	}
	bad := policy.ServicePolicy{Service: " "}
	if err := bad.Validate(); err == nil {
		t.Error("policy without service accepted")
	}
	badStatement := policy.ServicePolicy{Service: "s", Statements: []policy.Statement{{}}}
	if err := badStatement.Validate(); err == nil {
		t.Error("policy with invalid statement accepted")
	}
}

func TestPolicySet(t *testing.T) {
	a := policy.ServicePolicy{Service: "a", Statements: []policy.Statement{
		{Actor: "x", Actions: []core.Action{core.ActionRead}, Fields: []string{"*"}}}}
	b := policy.ServicePolicy{Service: "b"}
	set, err := policy.NewPolicySet(a, b)
	if err != nil {
		t.Fatalf("NewPolicySet: %v", err)
	}
	if _, ok := set.Policy("a"); !ok {
		t.Error("Policy(a) missing")
	}
	if _, ok := set.Policy("ghost"); ok {
		t.Error("Policy(ghost) should fail")
	}
	if got := set.Services(); len(got) != 2 || got[0] != "a" {
		t.Errorf("Services() = %v", got)
	}
	if _, err := policy.NewPolicySet(a, a); err == nil {
		t.Error("duplicate service policy accepted")
	}
	if _, err := policy.NewPolicySet(policy.ServicePolicy{Service: "x", Statements: []policy.Statement{{}}}); err == nil {
		t.Error("invalid policy accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPolicySet should panic")
		}
	}()
	policy.MustPolicySet(a, a)
}

func TestConsentRegistry(t *testing.T) {
	r := policy.NewConsentRegistry()
	now := time.Date(2026, 6, 15, 12, 0, 0, 0, time.UTC)
	if err := r.Grant("alice", "medical-service", now); err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if err := r.Grant("", "x", now); err == nil {
		t.Error("empty user accepted")
	}
	if !r.HasConsent("alice", "medical-service") {
		t.Error("consent not recorded")
	}
	if r.HasConsent("alice", "research") || r.HasConsent("bob", "medical-service") {
		t.Error("unexpected consent")
	}
	if got := r.ConsentedServices("alice"); len(got) != 1 || got[0] != "medical-service" {
		t.Errorf("ConsentedServices = %v", got)
	}
	if err := r.Withdraw("alice", "medical-service"); err != nil {
		t.Fatalf("Withdraw: %v", err)
	}
	if r.HasConsent("alice", "medical-service") {
		t.Error("withdrawn consent still active")
	}
	if len(r.ConsentedServices("alice")) != 0 {
		t.Error("withdrawn consent still listed")
	}
	if err := r.Withdraw("alice", "ghost"); err == nil {
		t.Error("withdrawing unknown consent accepted")
	}
}

func TestCheckerCompliantWithDerivedPolicies(t *testing.T) {
	p := surgeryLTS(t)
	// Policies derived from the flows themselves must make the model
	// compliant — the system does exactly what it says it does.
	set := policy.MustPolicySet(
		policy.PolicyFromModelFlows(p, casestudy.ServiceMedical),
		policy.PolicyFromModelFlows(p, casestudy.ServiceResearch),
	)
	report, err := policy.NewChecker(set).Check(p)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !report.Compliant {
		t.Fatalf("derived policies should be compliant; violations: %v", report.Violations)
	}
	if report.CheckedTransitions == 0 {
		t.Error("no transitions checked")
	}
}

func TestCheckerDetectsUncoveredBehaviour(t *testing.T) {
	p := surgeryLTS(t)
	// A policy that only covers the medical service leaves the research
	// service's flows uncovered.
	set := policy.MustPolicySet(policy.PolicyFromModelFlows(p, casestudy.ServiceMedical))
	report, err := policy.NewChecker(set).Check(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.Compliant {
		t.Fatal("expected violations for the research service")
	}
	var researchViolation bool
	for _, v := range report.Violations {
		if v.Service == casestudy.ServiceResearch {
			researchViolation = true
			if v.String() == "" {
				t.Error("violation String() empty")
			}
			if !strings.Contains(v.Reason, "no stated privacy policy") {
				t.Errorf("unexpected reason: %s", v.Reason)
			}
		}
	}
	if !researchViolation {
		t.Error("no violation attributed to the research service")
	}

	// Tightening a statement creates a purpose-level violation.
	medical := policy.PolicyFromModelFlows(p, casestudy.ServiceMedical)
	for i := range medical.Statements {
		if medical.Statements[i].Actor == casestudy.ActorNurse {
			medical.Statements[i].Purposes = []string{"a different purpose"}
		}
	}
	research := policy.PolicyFromModelFlows(p, casestudy.ServiceResearch)
	report, err = policy.NewChecker(policy.MustPolicySet(medical, research)).Check(p)
	if err != nil {
		t.Fatal(err)
	}
	var nurseViolation bool
	for _, v := range report.Violations {
		if v.Actor == casestudy.ActorNurse {
			nurseViolation = true
		}
	}
	if !nurseViolation {
		t.Error("expected a violation for the nurse's re-purposed read")
	}
}

func TestCheckerIncludePotential(t *testing.T) {
	full, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	set := policy.MustPolicySet(
		policy.PolicyFromModelFlows(full, casestudy.ServiceMedical),
		policy.PolicyFromModelFlows(full, casestudy.ServiceResearch),
	)
	checker := policy.NewChecker(set)
	report, err := checker.Check(full)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Compliant {
		t.Fatalf("declared flows should be compliant, got %v", report.Violations)
	}

	checker.IncludePotential = true
	report, err = checker.Check(full)
	if err != nil {
		t.Fatal(err)
	}
	if report.Compliant {
		t.Error("potential reads (e.g. the administrator's) should violate the stated policies")
	}
	var adminViolation bool
	for _, v := range report.Violations {
		if v.Actor == casestudy.ActorAdministrator {
			adminViolation = true
		}
	}
	if !adminViolation {
		t.Error("expected a violation for the administrator's potential read")
	}
}

func TestCheckerErrors(t *testing.T) {
	set := policy.MustPolicySet()
	if _, err := policy.NewChecker(set).Check(nil); err == nil {
		t.Error("nil LTS accepted")
	}
	if _, err := (&policy.Checker{}).Check(surgeryLTS(t)); err == nil {
		t.Error("checker without policies accepted")
	}
}

func TestPolicyFromModelFlows(t *testing.T) {
	p := surgeryLTS(t)
	medical := policy.PolicyFromModelFlows(p, casestudy.ServiceMedical)
	if medical.Service != casestudy.ServiceMedical {
		t.Errorf("service = %q", medical.Service)
	}
	if len(medical.Statements) == 0 {
		t.Fatal("no statements derived")
	}
	// Every statement belongs to an actor of the medical service.
	actors := map[string]bool{
		casestudy.ActorReceptionist: true,
		casestudy.ActorDoctor:       true,
		casestudy.ActorNurse:        true,
	}
	for _, s := range medical.Statements {
		if !actors[s.Actor] {
			t.Errorf("unexpected actor %q in derived medical policy", s.Actor)
		}
	}
	// Deriving twice is deterministic.
	again := policy.PolicyFromModelFlows(p, casestudy.ServiceMedical)
	if len(again.Statements) != len(medical.Statements) {
		t.Error("derivation not deterministic")
	}
}
