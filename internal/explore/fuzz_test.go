package explore_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/explore"
	"privascope/internal/synth"
)

// mutateScript interprets data as a mutation script over a fresh copy of the
// base synthetic model: each byte is one opcode/operand pair (high bits pick
// operands, low bits the opcode) applying a metadata relabel, an ACL policy
// edit, or a structural change. The interpretation is total — every byte
// sequence yields a valid model — and pure, so fuzz findings reproduce.
func mutateScript(data []byte) *dataflow.Model {
	m := synth.Model(synth.ModelSpec{})
	stores := m.DatastoreIDs()
	actors := m.ActorIDs()
	fields := m.FieldUniverse()
	for i, b := range data {
		op := int(b) % 6
		arg := int(b) / 6
		switch op {
		case 0:
			m.Flows[arg%len(m.Flows)].Purpose = fmt.Sprintf("fuzz-purpose-%d", arg)
		case 1:
			m.Name = fmt.Sprintf("fuzz-model-%d", arg)
		case 2:
			m.Policy = m.Policy.(*accesscontrol.ACL).
				WithoutActor(actors[arg%len(actors)], stores[arg%len(stores)])
		case 3:
			_ = m.Policy.(*accesscontrol.ACL).Add(accesscontrol.Grant{
				Actor:       actors[arg%len(actors)],
				Datastore:   stores[arg%len(stores)],
				Fields:      []string{fields[arg%len(fields)]},
				Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead},
				Reason:      "fuzz grant",
			})
		case 4:
			m.Actors = append(m.Actors, dataflow.Actor{
				ID: fmt.Sprintf("zz-fuzz-%d", i), Name: "Fuzz Actor",
			})
		case 5:
			m.Services = append(m.Services, dataflow.Service{
				ID: fmt.Sprintf("zz-svc-%d", i), Name: "Fuzz Service",
			})
		}
	}
	return m
}

// deltaCorpusSeeds is the canonical seed corpus: one script per delta kind
// plus a mixed script that layers policy edits under a structural change.
func deltaCorpusSeeds() map[string][]byte {
	return map[string][]byte{
		"identical":     {},
		"metadata":      {0, 7},           // purpose + name relabels
		"policy-revoke": {2},              // revoke one reader
		"policy-grant":  {3, 33},          // extra read grants
		"unsafe-actor":  {4},              // new actor
		"unsafe-mixed":  {0, 2, 3, 5, 17}, // relabels + policy edits + new service
	}
}

// FuzzModelDelta drives the model differ with arbitrary mutation scripts.
// Total invariants, whatever the script: Diff never panics and classifies
// every self-diff as identical; for enumerable (non-unsafe) deltas,
// ApplyPolicy patched onto the before-policy answers exactly like the
// after-policy over the delta's scope (the diff/apply round-trip); and
// regeneration from a stale trace either replays or falls back — both paths
// must land byte-identical to a cold generation of the mutated model.
func FuzzModelDelta(f *testing.F) {
	for _, seed := range deltaCorpusSeeds() {
		f.Add(seed)
	}
	before := synth.Model(synth.ModelSpec{})
	opts := core.Options{PotentialReads: core.PotentialReadsTerminal, Workers: 1}
	gen := core.NewGenerator(opts)
	prev, trace, _, err := gen.GenerateTracedContext(f.Context(), before)
	if err != nil {
		f.Fatalf("cold generate (before): %v", err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64] // bound per-input work; longer scripts only repeat opcodes
		}
		after := mutateScript(data)

		if d := explore.Diff(after, after); d.Kind != explore.DeltaIdentical {
			t.Fatalf("self-diff classified as %s, want identical", d.Kind)
		}
		d := explore.Diff(before, after)
		if d.Kind == explore.DeltaUnsafe {
			if len(d.Reasons) == 0 {
				t.Fatal("unsafe delta carries no reason")
			}
		} else {
			patched := d.ApplyPolicy(before.Policy)
			for _, actor := range d.Scope.Actors {
				for store, fields := range d.Scope.Datastores {
					for _, field := range fields {
						for _, perm := range []accesscontrol.Permission{
							accesscontrol.PermissionRead, accesscontrol.PermissionWrite, accesscontrol.PermissionDelete,
						} {
							want := after.Policy.Allows(actor, store, field, perm)
							if got := patched.Allows(actor, store, field, perm); got != want {
								t.Fatalf("diff/apply round-trip: patched(%s, %s, %s, %v) = %v, after-policy says %v",
									actor, store, field, perm, got, want)
							}
						}
					}
				}
			}
		}

		got, _, report, err := gen.RegenerateContext(t.Context(), prev, trace, after)
		if err != nil {
			t.Fatalf("regenerate: %v", err)
		}
		if (d.Kind == explore.DeltaUnsafe) != report.Fallback {
			t.Fatalf("delta kind %s but regeneration fallback=%v (reason=%q)",
				d.Kind, report.Fallback, report.FallbackReason)
		}
		cold, err := core.GenerateWithOptions(after, opts)
		if err != nil {
			t.Fatalf("cold generate (after): %v", err)
		}
		gd, err := digest(got)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := digest(cold)
		if err != nil {
			t.Fatal(err)
		}
		if gd != cd {
			t.Fatalf("script %v (kind=%s fallback=%v): regenerated digest %s != cold digest %s",
				data, d.Kind, report.Fallback, gd, cd)
		}
	})
}

// TestFuzzCorpusCommitted checks the committed FuzzModelDelta seed corpus
// stays in sync with the scripts above: each entry exists in go-fuzz v1 form,
// matches its canonical bytes, and its script still produces the delta kind
// its name promises. Regenerate with EXPLORE_REGEN_CORPUS=1 after a
// deliberate change to the opcode table.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzModelDelta")
	seeds := deltaCorpusSeeds()
	if os.Getenv("EXPLORE_REGEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := synth.Model(synth.ModelSpec{})
	for name, want := range seeds {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("corpus entry %s missing (regenerate with EXPLORE_REGEN_CORPUS=1): %v", name, err)
		}
		const header = "go test fuzz v1\n[]byte("
		s := string(raw)
		if !strings.HasPrefix(s, header) || !strings.HasSuffix(s, ")\n") {
			t.Fatalf("corpus entry %s is not in go-fuzz v1 form", name)
		}
		data, err := strconv.Unquote(s[len(header) : len(s)-2])
		if err != nil {
			t.Fatalf("corpus entry %s: %v", name, err)
		}
		if !bytes.Equal([]byte(data), want) {
			t.Fatalf("corpus entry %s is stale; regenerate with EXPLORE_REGEN_CORPUS=1", name)
		}
		kind := explore.Diff(before, mutateScript([]byte(data))).Kind
		wantKind := map[string]explore.DeltaKind{
			"identical":     explore.DeltaIdentical,
			"metadata":      explore.DeltaMetadata,
			"policy-revoke": explore.DeltaPolicy,
			"policy-grant":  explore.DeltaPolicy,
			"unsafe-actor":  explore.DeltaUnsafe,
			"unsafe-mixed":  explore.DeltaUnsafe,
		}[name]
		if kind != wantKind {
			t.Fatalf("corpus entry %s produces a %s delta, want %s", name, kind, wantKind)
		}
	}
}
