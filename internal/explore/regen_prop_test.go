// Property tests of the exploration strategies: symmetry reduction and
// incremental regeneration are pure optimisations, so for every drawable
// scenario their output must be byte-identical to the plain cold generation.
// The tests live in the external test package so they can drive the
// strategies through internal/core, the subsystem's only real caller.

package explore_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"

	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/explore"
	"privascope/internal/proptest"
	"privascope/internal/synth"
)

// digest hashes the complete serialised LTS plus its verbose DOT rendering,
// so any divergence in state numbering, labels, vectors or store contents
// changes the digest (the same construction as internal/core's test digest).
func digest(p *core.PrivacyLTS) (string, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(data)
	h.Write([]byte(p.DOT(core.DOTOptions{VerboseStates: true})))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// modelPair draws the same random model twice from one seed: two structurally
// independent copies the caller can mutate apart and diff.
func modelPair(seed int64) (*dataflow.Model, *dataflow.Model) {
	spec := synth.RandomModelSpec{Policy: synth.PolicyACL}
	before := synth.RandomModel(rand.New(rand.NewSource(seed)), spec)
	after := synth.RandomModel(rand.New(rand.NewSource(seed)), spec)
	return before, after
}

func drawMode(rng *rand.Rand) core.PotentialReadMode {
	return []core.PotentialReadMode{
		core.PotentialReadsOff, core.PotentialReadsTerminal, core.PotentialReadsFull,
	}[rng.Intn(3)]
}

// TestPropSymmetryDigest: symmetry-reduced exploration must be invisible in
// the output. For any model — fully symmetric, partially symmetric or
// asymmetric — and any worker count, the quotient-expanded LTS is
// byte-identical to the plain exploration's, and the canonical state count
// never exceeds the full one.
func TestPropSymmetryDigest(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		var m *dataflow.Model
		if rng.Intn(2) == 0 {
			m = synth.SymmetricModel(synth.SymmetricSpec{
				Replicas: 2 + rng.Intn(3), Fields: 1 + rng.Intn(2),
			})
		} else {
			m, _ = modelPair(seed)
		}
		mode := drawMode(rng)
		workers := []int{1, 2, 4}[rng.Intn(3)]

		plain, err := core.GenerateWithOptions(m, core.Options{PotentialReads: mode, Workers: workers})
		if err != nil {
			return fmt.Errorf("plain generate: %w", err)
		}
		gen := core.NewGenerator(core.Options{
			PotentialReads: mode, Workers: workers,
			Explore: core.ExploreOptions{Symmetry: true},
		})
		reduced, _, report, err := gen.GenerateTracedContext(t.Context(), m)
		if err != nil {
			return fmt.Errorf("symmetry generate: %w", err)
		}
		pd, err := digest(plain)
		if err != nil {
			return err
		}
		rd, err := digest(reduced)
		if err != nil {
			return err
		}
		if pd != rd {
			return fmt.Errorf("model %q mode=%v workers=%d: symmetry digest %s != plain digest %s",
				m.Name, mode, workers, rd, pd)
		}
		if report.CanonicalStates > plain.Stats().States {
			return fmt.Errorf("model %q: %d canonical states exceed the %d full states",
				m.Name, report.CanonicalStates, plain.Stats().States)
		}
		return nil
	})
}

// mutateSafe applies 1..3 random replay-safe mutations to m — metadata
// relabels and ACL policy edits — and describes them. None may change the
// model's structure, so the resulting delta is never unsafe.
func mutateSafe(rng *rand.Rand, m *dataflow.Model) string {
	desc := ""
	stores := m.DatastoreIDs()
	actors := m.ActorIDs()
	fields := m.FieldUniverse()
	for n := 1 + rng.Intn(3); n > 0; n-- {
		switch rng.Intn(4) {
		case 0:
			i := rng.Intn(len(m.Flows))
			m.Flows[i].Purpose = fmt.Sprintf("mut-purpose-%d", rng.Intn(1000))
			desc += fmt.Sprintf("[relabel flow %d]", i)
		case 1:
			m.Name += "-mutated"
			desc += "[rename model]"
		case 2:
			a, s := actors[rng.Intn(len(actors))], stores[rng.Intn(len(stores))]
			m.Policy = m.Policy.(*accesscontrol.ACL).WithoutActor(a, s)
			desc += fmt.Sprintf("[revoke %s@%s]", a, s)
		case 3:
			g := accesscontrol.Grant{
				Actor:       actors[rng.Intn(len(actors))],
				Datastore:   stores[rng.Intn(len(stores))],
				Fields:      []string{fields[rng.Intn(len(fields))]},
				Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead},
				Reason:      "property-test grant",
			}
			if err := m.Policy.(*accesscontrol.ACL).Add(g); err == nil {
				desc += fmt.Sprintf("[grant %s@%s]", g.Actor, g.Datastore)
			}
		}
	}
	return desc
}

// TestPropDeltaRegenMatchesCold: for any random model and any replay-safe
// mutation of it, incremental regeneration from the previous trace produces
// an LTS byte-identical to a cold generation of the mutated model, without
// falling back.
func TestPropDeltaRegenMatchesCold(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		before, after := modelPair(seed)
		desc := mutateSafe(rng, after)
		opts := core.Options{PotentialReads: drawMode(rng), Workers: 1 + rng.Intn(4)}

		gen := core.NewGenerator(opts)
		prev, trace, _, err := gen.GenerateTracedContext(t.Context(), before)
		if err != nil {
			return fmt.Errorf("cold generate (before): %w", err)
		}
		got, _, report, err := gen.RegenerateContext(t.Context(), prev, trace, after)
		if err != nil {
			return fmt.Errorf("regenerate %s: %w", desc, err)
		}
		if report.Fallback {
			return fmt.Errorf("safe delta %s fell back: kind=%s reason=%q",
				desc, report.DeltaKind, report.FallbackReason)
		}
		cold, err := core.GenerateWithOptions(after, opts)
		if err != nil {
			return fmt.Errorf("cold generate (after): %w", err)
		}
		gd, err := digest(got)
		if err != nil {
			return err
		}
		cd, err := digest(cold)
		if err != nil {
			return err
		}
		if gd != cd {
			return fmt.Errorf("mutations %s (kind=%s, %d affected readers): regenerated digest %s != cold digest %s",
				desc, report.DeltaKind, report.AffectedReaders, gd, cd)
		}
		return nil
	})
}

// TestPropUnsafeDeltaFallsBack: any structural mutation must classify as an
// unsafe delta, force regeneration back onto the full cold path, and still
// produce output byte-identical to a cold generation of the changed model —
// falling back never loses correctness.
func TestPropUnsafeDeltaFallsBack(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		before, after := modelPair(seed)
		var desc string
		switch rng.Intn(3) {
		case 0:
			after.Actors = append(after.Actors, dataflow.Actor{ID: "zz-extra", Name: "Extra"})
			desc = "add actor"
		case 1:
			after.Services = append(after.Services, dataflow.Service{ID: "zz-svc", Name: "Extra Service"})
			desc = "add service"
		case 2:
			last := len(after.Datastores) - 1
			after.Datastores = after.Datastores[:last]
			pruned := before.Datastores[last].ID
			flows := after.Flows[:0]
			for _, f := range after.Flows {
				if f.From != pruned && f.To != pruned {
					flows = append(flows, f)
				}
			}
			after.Flows = flows
			desc = "remove datastore"
		}

		if d := explore.Diff(before, after); d.Kind != explore.DeltaUnsafe {
			return fmt.Errorf("%s classified as %s, want unsafe", desc, d.Kind)
		}
		opts := core.Options{PotentialReads: drawMode(rng), Workers: 1}
		gen := core.NewGenerator(opts)
		prev, trace, _, err := gen.GenerateTracedContext(t.Context(), before)
		if err != nil {
			return fmt.Errorf("cold generate (before): %w", err)
		}
		got, _, report, err := gen.RegenerateContext(t.Context(), prev, trace, after)
		if err != nil {
			return fmt.Errorf("regenerate after %s: %w", desc, err)
		}
		if report.Mode != "full" || !report.Fallback || report.FallbackReason == "" {
			return fmt.Errorf("%s: mode=%q fallback=%v reason=%q, want a full fallback with a reason",
				desc, report.Mode, report.Fallback, report.FallbackReason)
		}
		cold, err := core.GenerateWithOptions(after, opts)
		if err != nil {
			return fmt.Errorf("cold generate (after): %w", err)
		}
		gd, err := digest(got)
		if err != nil {
			return err
		}
		cd, err := digest(cold)
		if err != nil {
			return err
		}
		if gd != cd {
			return fmt.Errorf("%s: fallback digest %s != cold digest %s", desc, gd, cd)
		}
		return nil
	})
}
