package explore

// stateTable is an open-addressing hash table mapping packed states to their
// dense int32 IDs. It stores no key bytes of its own: a state's words live in
// the caller's retained slab at offset id*words, so an entry is just the
// 64-bit hash (to skip almost all word comparisons) and the ID.
//
// Concurrency contract (matching the driver's phase structure): lookups may
// run concurrently from many workers during an expansion phase; inserts
// happen only from the single-threaded merge phase, with no concurrent
// lookups. The phases are separated by a WaitGroup barrier, which provides
// the necessary happens-before edges, so the table needs no locks at all.
type stateTable struct {
	// entries[i].id is the state ID plus one; zero marks an empty slot.
	entries []tableEntry
	count   int
	mask    uint64
}

type tableEntry struct {
	hash uint64
	id   int32
}

const initialTableSize = 1024 // power of two

func newStateTable() *stateTable {
	return &stateTable{entries: make([]tableEntry, initialTableSize), mask: initialTableSize - 1}
}

// HashWords hashes a packed state (FNV-1a over whole words). Exposed so
// expanders and replay indexes hash states consistently with the driver.
func HashWords(words []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range words {
		h ^= w
		h *= 1099511628211
	}
	return h
}

func wordsEqual(a, b []uint64) bool {
	for i, w := range a {
		if b[i] != w {
			return false
		}
	}
	return true
}

// lookup returns the ID of the state equal to key, or (-1, false). slab holds
// every registered state back to back, w words each.
func (t *stateTable) lookup(slab []uint64, w int, hash uint64, key []uint64) (int32, bool) {
	i := hash & t.mask
	for {
		e := t.entries[i]
		if e.id == 0 {
			return -1, false
		}
		if e.hash == hash {
			id := e.id - 1
			base := int(id) * w
			if wordsEqual(slab[base:base+w], key) {
				return id, true
			}
		}
		i = (i + 1) & t.mask
	}
}

// insert registers a state already appended to the slab. The caller
// guarantees the state is not present.
func (t *stateTable) insert(hash uint64, id int32) {
	if (t.count+1)*4 >= len(t.entries)*3 {
		t.grow()
	}
	i := hash & t.mask
	for t.entries[i].id != 0 {
		i = (i + 1) & t.mask
	}
	t.entries[i] = tableEntry{hash: hash, id: id + 1}
	t.count++
}

func (t *stateTable) grow() {
	old := t.entries
	t.entries = make([]tableEntry, len(old)*2)
	t.mask = uint64(len(t.entries) - 1)
	for _, e := range old {
		if e.id == 0 {
			continue
		}
		i := e.hash & t.mask
		for t.entries[i].id != 0 {
			i = (i + 1) & t.mask
		}
		t.entries[i] = e
	}
}
