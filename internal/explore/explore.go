// Package explore owns the exploration strategy of privacy-LTS generation:
// a deterministic, level-synchronised parallel BFS driver over packed uint64
// state encodings, with three cooperating layers on top of the plain
// breadth-first search:
//
//   - arena/slab allocation: frontier candidate states and transition buffers
//     come from per-worker reusable arenas whose lifetime is one BFS
//     generation; survivors are copied into a single retained state slab, so
//     steady-state exploration performs no per-candidate heap allocation.
//
//   - symmetry reduction: DetectOrbits finds same-shaped actors (identical
//     flow structure and policy grants under renaming), so a caller can
//     explore one canonical representative per orbit and expand the quotient
//     back to the full, byte-identical LTS (package core implements the
//     canonicalisation against its compiled bit masks and verifies every
//     orbit against them before trusting it).
//
//   - incremental regeneration: Diff classifies the delta between two
//     data-flow models; when the delta provably cannot change the explored
//     structure (metadata-only, or read-permission changes under terminal
//     potential reads), a caller can replay a previous exploration Result
//     state-by-state instead of re-expanding, recomputing only the affected
//     (datastore, reader) transitions, with a full-regeneration fallback
//     whenever safety cannot be proven.
//
// The driver is deliberately agnostic about what the packed words mean: an
// Expander supplies the initial state and the successor enumeration, and the
// driver guarantees that state numbering, edge order and the final Result are
// identical for every worker count — the property the rest of the repository
// (digest tests, modelstore artifacts, the cluster determinism harness)
// relies on.
package explore
