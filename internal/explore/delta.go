package explore

import (
	"fmt"
	"reflect"
	"sort"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/schema"
)

// DeltaKind classifies the difference between two data-flow models from the
// viewpoint of incremental regeneration.
type DeltaKind int

const (
	// DeltaIdentical: the models are indistinguishable (including policy).
	DeltaIdentical DeltaKind = iota + 1
	// DeltaMetadata: only fields that cannot change the explored state space
	// differ — names, descriptions, purposes, schema categories.
	DeltaMetadata
	// DeltaPolicy: the structure is identical but access-control answers
	// changed; AffectedReaders lists the (datastore, actor) pairs whose read
	// access differs. Exploration can be replayed, recomputing only the
	// potential reads of affected readers.
	DeltaPolicy
	// DeltaUnsafe: the structure itself changed (actors, stores, schema
	// fields, services, flows, or a non-enumerable policy type), so no reuse
	// of a previous exploration can be proven safe; regenerate from scratch.
	DeltaUnsafe
)

// String names the kind.
func (k DeltaKind) String() string {
	switch k {
	case DeltaIdentical:
		return "identical"
	case DeltaMetadata:
		return "metadata"
	case DeltaPolicy:
		return "policy"
	case DeltaUnsafe:
		return "unsafe"
	default:
		return fmt.Sprintf("deltakind(%d)", int(k))
	}
}

// ReaderKey names one (datastore, actor) potential-read relationship.
type ReaderKey struct {
	Datastore, Actor string
}

// Delta is the result of diffing two models.
type Delta struct {
	Kind DeltaKind
	// Changes lists every access-control answer that differs, over Scope.
	Changes []accesscontrol.AccessChange
	// AffectedReaders lists the distinct (datastore, actor) pairs with a
	// changed read permission — the potential-read tables that must be
	// recomputed during replay.
	AffectedReaders []ReaderKey
	// Reasons explains DeltaUnsafe classifications.
	Reasons []string
	// Scope is the (actors × datastores × fields) universe the policies were
	// compared over; empty for unsafe deltas.
	Scope accesscontrol.Scope
}

// Diff classifies the difference between two models. The structural parts —
// user, actor set, datastores and their schema field names, services, and
// every flow's shape — must match exactly for any reuse to be safe; on top
// of an identical structure the access-control policies are compared over
// the full (actor × datastore × field × permission) scope, including actors
// that only the policies know about and the pseudonymised field forms the
// exploration encoding tracks.
func Diff(before, after *dataflow.Model) *Delta {
	d := &Delta{}
	unsafe := func(format string, args ...any) {
		d.Reasons = append(d.Reasons, fmt.Sprintf(format, args...))
	}
	if before == nil || after == nil {
		d.Kind = DeltaUnsafe
		unsafe("nil model")
		return d
	}
	if before.User.ID != after.User.ID {
		unsafe("data subject changed: %q -> %q", before.User.ID, after.User.ID)
	}
	if !stringsEqual(before.ActorIDs(), after.ActorIDs()) {
		unsafe("actor set changed")
	}
	if !stringsEqual(before.DatastoreIDs(), after.DatastoreIDs()) {
		unsafe("datastore set changed")
	} else {
		for _, id := range after.DatastoreIDs() {
			db, _ := before.Datastore(id)
			da, _ := after.Datastore(id)
			if db.Anonymised != da.Anonymised {
				unsafe("datastore %q anonymisation changed", id)
			}
			if !stringsEqual(sortedFieldNames(db.Schema), sortedFieldNames(da.Schema)) {
				unsafe("datastore %q schema fields changed", id)
			}
		}
	}
	if !stringsEqual(before.ServiceIDs(), after.ServiceIDs()) {
		unsafe("service set changed")
	} else {
		for _, svcID := range after.ServiceIDs() {
			fb, fa := before.ServiceFlows(svcID), after.ServiceFlows(svcID)
			if len(fb) != len(fa) {
				unsafe("service %q flow count changed", svcID)
				continue
			}
			for i := range fa {
				if fb[i].Order != fa[i].Order || fb[i].From != fa[i].From || fb[i].To != fa[i].To ||
					fb[i].Delete != fa[i].Delete ||
					!stringsEqual(fb[i].Fields, fa[i].Fields) || !stringsEqual(fb[i].Authored, fa[i].Authored) {
					unsafe("service %q flow %d changed shape", svcID, fa[i].Order)
				}
			}
		}
	}
	if len(d.Reasons) > 0 {
		d.Kind = DeltaUnsafe
		return d
	}

	// Policy comparison over the full scope: model actors plus every actor
	// either policy names, every store crossed with the exploration's field
	// universe (model fields and their pseudonymised forms).
	actorSet := make(map[string]bool)
	for _, a := range after.ActorIDs() {
		actorSet[a] = true
	}
	if !collectPolicyActors(before.Policy, actorSet) || !collectPolicyActors(after.Policy, actorSet) {
		d.Kind = DeltaUnsafe
		unsafe("policy type does not enumerate its actors; cannot bound the comparison scope")
		return d
	}
	fieldSet := make(map[string]bool)
	for _, f := range after.FieldUniverse() {
		fieldSet[f] = true
		fieldSet[schema.AnonName(f)] = true
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	actors := make([]string, 0, len(actorSet))
	for a := range actorSet {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	scope := accesscontrol.Scope{Actors: actors, Datastores: make(map[string][]string)}
	for _, id := range after.DatastoreIDs() {
		scope.Datastores[id] = fields
	}
	d.Scope = scope
	d.Changes = accesscontrol.Diff(policyOrEmpty(before.Policy), policyOrEmpty(after.Policy), scope)

	seen := make(map[ReaderKey]bool)
	for _, c := range d.Changes {
		if c.Perm != accesscontrol.PermissionRead {
			continue
		}
		k := ReaderKey{Datastore: c.Datastore, Actor: c.Actor}
		if !seen[k] {
			seen[k] = true
			d.AffectedReaders = append(d.AffectedReaders, k)
		}
	}
	sort.Slice(d.AffectedReaders, func(i, j int) bool {
		a, b := d.AffectedReaders[i], d.AffectedReaders[j]
		if a.Datastore != b.Datastore {
			return a.Datastore < b.Datastore
		}
		return a.Actor < b.Actor
	})

	switch {
	case len(d.Changes) > 0:
		d.Kind = DeltaPolicy
	case metadataEqual(before, after):
		d.Kind = DeltaIdentical
	default:
		d.Kind = DeltaMetadata
	}
	return d
}

// ApplyPolicy patches the before-policy with the delta's access changes,
// yielding a policy that answers like the after-policy over the delta's
// scope. It is the round-trip half of Diff, used to validate deltas.
func (d *Delta) ApplyPolicy(before accesscontrol.Policy) accesscontrol.Policy {
	p := &patchedPolicy{base: before, overrides: make(map[patchKey]bool, len(d.Changes))}
	for _, c := range d.Changes {
		p.overrides[patchKey{actor: c.Actor, store: c.Datastore, field: c.Field, perm: c.Perm}] = c.After
	}
	return p
}

type patchKey struct {
	actor, store, field string
	perm                accesscontrol.Permission
}

// patchedPolicy overlays point access changes on a base policy.
type patchedPolicy struct {
	base      accesscontrol.Policy
	overrides map[patchKey]bool
}

func (p *patchedPolicy) Allows(actor, datastore, field string, perm accesscontrol.Permission) bool {
	if v, ok := p.overrides[patchKey{actor: actor, store: datastore, field: field, perm: perm}]; ok {
		return v
	}
	if p.base == nil {
		return false
	}
	return p.base.Allows(actor, datastore, field, perm)
}

func (p *patchedPolicy) Explain(actor, datastore, field string, perm accesscontrol.Permission) accesscontrol.Decision {
	allowed := p.Allows(actor, datastore, field, perm)
	return accesscontrol.Decision{Allowed: allowed, Reason: "patched policy delta"}
}

func (p *patchedPolicy) ActorsWith(datastore, field string, perm accesscontrol.Permission) []string {
	set := make(map[string]bool)
	if p.base != nil {
		for _, a := range p.base.ActorsWith(datastore, field, perm) {
			set[a] = true
		}
	}
	for k, after := range p.overrides {
		if k.store != datastore || k.field != field || k.perm != perm {
			continue
		}
		if after {
			set[k.actor] = true
		} else {
			delete(set, k.actor)
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// collectPolicyActors adds every actor the policy names to the set,
// returning false for policy types it cannot enumerate.
func collectPolicyActors(p accesscontrol.Policy, out map[string]bool) bool {
	switch pp := p.(type) {
	case nil:
		return true
	case *accesscontrol.ACL:
		for _, a := range pp.Actors() {
			out[a] = true
		}
		return true
	case *accesscontrol.RBAC:
		for _, a := range pp.Actors() {
			out[a] = true
		}
		return true
	case *accesscontrol.Composite:
		for _, sub := range pp.Policies() {
			if !collectPolicyActors(sub, out) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func policyOrEmpty(p accesscontrol.Policy) accesscontrol.Policy {
	if p == nil {
		return &accesscontrol.ACL{}
	}
	return p
}

// metadataEqual reports whether the models are deeply equal outside the
// policy (which the caller has already compared semantically).
func metadataEqual(a, b *dataflow.Model) bool {
	ac, bc := *a, *b
	ac.Policy, bc.Policy = nil, nil
	return reflect.DeepEqual(ac, bc)
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedFieldNames(s schema.Schema) []string {
	names := make([]string, 0, len(s.Fields))
	for _, f := range s.Fields {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
