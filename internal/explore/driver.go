package explore

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"privascope/internal/lts"
)

// ErrStateLimit is returned by Run when the number of discovered states
// exceeds Config.MaxStates. Callers wrap it in their own domain error.
var ErrStateLimit = errors.New("explore: state count exceeds the configured maximum")

// Config configures one BFS run.
type Config struct {
	// Workers is the number of goroutines expanding each frontier generation;
	// values below one mean serial expansion. The Result is byte-identical
	// for every worker count.
	Workers int
	// MaxStates caps the number of discovered states; zero or negative means
	// unbounded. The cap is checked with exactly the cadence of the original
	// in-core BFS (once per merged frontier state), so the error triggers at
	// the same point of the same exploration.
	MaxStates int
}

// Expander enumerates the successors of a packed state. Implementations must
// be safe for concurrent Expand calls from multiple workers; per-worker
// scratch state belongs in Sink.Scratch.
type Expander interface {
	// Words is the fixed width of every packed state, in uint64 words.
	Words() int
	// Initial returns the initial state. The driver copies it.
	Initial() []uint64
	// Expand emits every successor of ps (read-only, valid only during the
	// call) to the sink, in the model's deterministic enumeration order.
	Expand(ps []uint64, sink *Sink)
}

// Edge is one discovered transition. Rule is an expander-defined tag
// identifying which model rule produced the edge; replay-style expanders use
// it to reuse a previous run's work.
type Edge struct {
	From, To int32
	Rule     int32
	Label    lts.Label
}

// Result is the complete outcome of a BFS run: the dense state slab, the
// edge list in deterministic discovery order, and the lookup structures a
// later run needs to replay it (the trace of the exploration).
type Result struct {
	// Words is the packed-state width; state id occupies
	// States[id*Words : (id+1)*Words].
	Words     int
	NumStates int
	States    []uint64
	// Edges is grouped by From in non-decreasing order (frontier order).
	Edges []Edge
	// Explored counts the states that were expanded (entered a frontier).
	Explored int

	expanded []uint64 // bitset: state entered a frontier
	table    *stateTable
}

// StateWords returns the packed words of state id, aliasing the slab.
func (r *Result) StateWords(id int32) []uint64 {
	base := int(id) * r.Words
	return r.States[base : base+r.Words]
}

// Lookup finds the ID of a packed state recorded in the result.
func (r *Result) Lookup(ps []uint64) (int32, bool) {
	return r.table.lookup(r.States, r.Words, HashWords(ps), ps)
}

// WasExpanded reports whether the state's successors were enumerated during
// the run (states discovered as terminal are recorded but never expanded).
func (r *Result) WasExpanded(id int32) bool {
	return r.expanded[int(id)/64]&(1<<(uint(id)%64)) != 0
}

func (r *Result) markExpanded(id int32) {
	r.expanded[int(id)/64] |= 1 << (uint(id) % 64)
}

// WithEdges returns a shallow clone of the result that shares the state
// slab, lookup table and expansion bitset but carries the given edge list.
// Replay uses it to re-label a wholesale-reused trace without re-running the
// exploration; edges must describe the same transitions (From/To/Rule) as the
// original for the clone to stay a valid trace.
func (r *Result) WithEdges(edges []Edge) *Result {
	c := *r
	c.Edges = edges
	return &c
}

// EdgeIndex returns per-state offsets into Edges: the edges leaving state s
// are Edges[idx[s]:idx[s+1]]. Valid because Edges is grouped by From.
func (r *Result) EdgeIndex() []int32 {
	idx := make([]int32, r.NumStates+1)
	e := 0
	for s := 0; s < r.NumStates; s++ {
		idx[s] = int32(e)
		for e < len(r.Edges) && r.Edges[e].From == int32(s) {
			e++
		}
	}
	idx[r.NumStates] = int32(len(r.Edges))
	return idx
}

// candidate is one successor discovered during an expansion phase; words
// point into a worker arena (or a borrowed slab) and are only valid until the
// next generation begins.
type candidate struct {
	words    []uint64
	label    lts.Label
	hash     uint64
	knownID  int32 // >= 0 when the state was already registered before this generation
	rule     int32
	terminal bool
}

// Sink collects the successors of the state currently being expanded. One
// sink exists per worker; Copy/Alloc carve per-candidate state buffers out of
// the worker's arena.
type Sink struct {
	arena wordArena
	cands []candidate
	words int
	slab  []uint64 // snapshot of Result.States for this generation
	table *stateTable

	// Scratch is per-worker storage for the Expander (label caches,
	// canonicalisation buffers, ...). The driver never touches it.
	Scratch any
}

// Alloc returns an uninitialised state buffer from the worker arena. The
// caller must overwrite every word before emitting it.
func (s *Sink) Alloc() []uint64 { return s.arena.alloc(s.words) }

// Copy returns an arena-backed copy of ps, ready to be mutated into a
// successor state.
func (s *Sink) Copy(ps []uint64) []uint64 {
	dst := s.arena.alloc(s.words)
	copy(dst, ps)
	return dst
}

// Emit records one successor. words may be arena-backed (Copy/Alloc) or
// borrowed from any stable slab (replay reuses a previous run's states); the
// driver copies the words of newly discovered states into its own slab. The
// successor is pre-resolved against the visited table here, on the worker,
// so the serial merge phase only re-hashes same-generation duplicates.
func (s *Sink) Emit(words []uint64, rule int32, label lts.Label, terminal bool) {
	h := HashWords(words)
	id, ok := s.table.lookup(s.slab, s.words, h, words)
	if !ok {
		id = -1
	}
	s.cands = append(s.cands, candidate{
		words: words, label: label, hash: h, knownID: id, rule: rule, terminal: terminal,
	})
}

func (s *Sink) begin(slab []uint64, table *stateTable) {
	s.arena.reset()
	s.cands = s.cands[:0]
	s.slab = slab
	s.table = table
}

// cancelCheckMask spaces out ctx polls on the serial expansion loop:
// checking every 64th state keeps cancellation latency far below a
// millisecond without putting an atomic load in front of each expansion.
const cancelCheckMask = 63

// Run executes the level-synchronised BFS: each frontier generation is
// expanded by Config.Workers goroutines into per-worker arenas, then merged
// on one goroutine in frontier order, which makes state numbering and edge
// order deterministic regardless of the worker count. Cancellation is
// observed at state granularity during expansion and between generations
// during merge; every worker goroutine is joined before Run returns.
func Run(ctx context.Context, cfg Config, x Expander) (*Result, error) {
	w := x.Words()
	if w <= 0 {
		return nil, errors.New("explore: expander reports a non-positive state width")
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = int(^uint(0) >> 1)
	}

	res := &Result{Words: w, table: newStateTable()}
	init := x.Initial()
	if len(init) != w {
		return nil, errors.New("explore: initial state width does not match the expander's")
	}
	res.States = append(res.States, init...)
	res.NumStates = 1
	res.expanded = append(res.expanded, 0)
	res.table.insert(HashWords(init), 0)

	sinks := make([]*Sink, workers)
	for i := range sinks {
		sinks[i] = &Sink{words: w}
	}

	frontier := []int32{0}
	var next []int32
	var results [][]candidate

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cap(results) < len(frontier) {
			results = make([][]candidate, len(frontier))
		} else {
			results = results[:len(frontier)]
			for i := range results {
				results[i] = nil
			}
		}
		if err := expandPhase(ctx, sinks, res, frontier, results, x); err != nil {
			return nil, err
		}

		// Merge phase: single-threaded, in frontier order.
		next = next[:0]
		for i := range results {
			if res.NumStates > maxStates {
				return nil, ErrStateLimit
			}
			from := frontier[i]
			for ci := range results[i] {
				c := &results[i][ci]
				id := c.knownID
				isNew := false
				if id < 0 {
					// Not registered before this generation; it may have been
					// discovered earlier in this same merge.
					if found, ok := res.table.lookup(res.States, w, c.hash, c.words); ok {
						id = found
					} else {
						id = int32(res.NumStates)
						res.States = append(res.States, c.words...)
						res.NumStates++
						if int(id)/64 >= len(res.expanded) {
							res.expanded = append(res.expanded, 0)
						}
						res.table.insert(c.hash, id)
						isNew = true
					}
				}
				res.Edges = append(res.Edges, Edge{From: from, To: id, Rule: c.rule, Label: c.label})
				if isNew && !c.terminal {
					next = append(next, id)
				}
			}
		}
		res.Explored += len(frontier)
		for _, id := range next {
			res.markExpanded(id)
		}
		frontier, next = next, frontier
	}
	res.markExpanded(0)
	return res, nil
}

// expandPhase distributes the frontier over the worker pool; results[i]
// receives the candidates of frontier[i] as a sub-slice of the expanding
// worker's candidate buffer. Workers poll ctx before each expansion and the
// pool is always joined before returning.
func expandPhase(ctx context.Context, sinks []*Sink, res *Result, frontier []int32, results [][]candidate, x Expander) error {
	workers := len(sinks)
	if workers > len(frontier) {
		workers = len(frontier)
	}
	w := res.Words
	slab := res.States
	if workers <= 1 {
		s := sinks[0]
		s.begin(slab, res.table)
		for i, id := range frontier {
			if i&cancelCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			start := len(s.cands)
			x.Expand(slab[int(id)*w:int(id)*w+w], s)
			results[i] = s.cands[start:len(s.cands):len(s.cands)]
		}
		return nil
	}
	var nextIdx atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		s := sinks[wi]
		s.begin(slab, res.table)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= len(frontier) || ctx.Err() != nil {
					return
				}
				id := frontier[i]
				start := len(s.cands)
				x.Expand(slab[int(id)*w:int(id)*w+w], s)
				results[i] = s.cands[start:len(s.cands):len(s.cands)]
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
