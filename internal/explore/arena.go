package explore

// wordArena hands out []uint64 blocks from large reusable chunks. Its
// lifetime discipline is generation-scoped: the driver resets every worker's
// arena at the start of each BFS generation, after the merge phase has copied
// the surviving candidate states into the retained state slab. Reset keeps
// the chunks, so after warm-up a worker allocates nothing per generation.
//
// Blocks are NOT zeroed: every consumer fully overwrites the block (state
// copies write all words).
type wordArena struct {
	chunks [][]uint64
	cur    int // index of the chunk currently being carved
	off    int // next free word within chunks[cur]
}

// arenaChunkWords is the default chunk size (128 KiB of words); allocations
// larger than a chunk get a dedicated chunk of their own size.
const arenaChunkWords = 16384

// alloc returns an uninitialised block of n words.
func (a *wordArena) alloc(n int) []uint64 {
	for {
		if a.cur < len(a.chunks) {
			c := a.chunks[a.cur]
			if a.off+n <= len(c) {
				out := c[a.off : a.off+n : a.off+n]
				a.off += n
				return out
			}
			a.cur++
			a.off = 0
			continue
		}
		size := arenaChunkWords
		if n > size {
			size = n
		}
		a.chunks = append(a.chunks, make([]uint64, size))
	}
}

// reset recycles every chunk. Blocks handed out before the reset must no
// longer be referenced by the caller.
func (a *wordArena) reset() {
	a.cur, a.off = 0, 0
}
