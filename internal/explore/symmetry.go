package explore

import (
	"fmt"
	"sort"
	"strings"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/schema"
)

// DetectOrbits finds groups of structurally interchangeable actors ("orbits")
// in a data-flow model: actors whose services declare the same-shaped flows
// (identical up to substituting the actor itself) and whose access-control
// grants are identical. Swapping two actors of an orbit maps the model onto
// itself, so the reachable state space is symmetric under any permutation of
// an orbit — which is what symmetry-reduced exploration exploits.
//
// Detection is deliberately conservative:
//
//   - two actors are candidates only when their rendered flow/grant
//     signatures are exactly equal;
//   - any service whose flows reference two or more candidate actors couples
//     them (e.g. one replica discloses to another), so all its candidates are
//     dropped;
//   - groups need at least two members.
//
// The result lists each orbit's members in sorted order, orbits ordered by
// their first member. Callers must still verify the orbits against their own
// compiled form of the model before relying on them; DetectOrbits only
// reasons about the declared model.
func DetectOrbits(m *dataflow.Model) [][]string {
	if m == nil || len(m.Actors) < 2 {
		return nil
	}

	// The grant universe mirrors the exploration encoding: every model field
	// plus its pseudonymised counterpart, against every datastore.
	fieldSet := make(map[string]bool)
	for _, f := range m.FieldUniverse() {
		fieldSet[f] = true
		fieldSet[schema.AnonName(f)] = true
	}
	grantFields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		grantFields = append(grantFields, f)
	}
	sort.Strings(grantFields)
	perms := []accesscontrol.Permission{
		accesscontrol.PermissionRead,
		accesscontrol.PermissionWrite,
		accesscontrol.PermissionDelete,
	}

	bySig := make(map[string][]string)
	for _, a := range m.Actors {
		sig := actorSignature(m, a.ID, grantFields, perms)
		bySig[sig] = append(bySig[sig], a.ID)
	}

	candidate := make(map[string]bool)
	for _, group := range bySig {
		if len(group) >= 2 {
			for _, a := range group {
				candidate[a] = true
			}
		}
	}
	if len(candidate) == 0 {
		return nil
	}

	// Drop every candidate that shares a service with another candidate: a
	// flow between (or jointly involving) two candidates couples their state,
	// and swapping only one of them would not map the model onto itself.
	for _, svcID := range m.ServiceIDs() {
		refs := make(map[string]bool)
		for _, f := range m.ServiceFlows(svcID) {
			if candidate[f.From] {
				refs[f.From] = true
			}
			if candidate[f.To] {
				refs[f.To] = true
			}
		}
		if len(refs) >= 2 {
			for a := range refs {
				delete(candidate, a)
			}
		}
	}

	var orbits [][]string
	for _, group := range bySig {
		var members []string
		for _, a := range group {
			if candidate[a] {
				members = append(members, a)
			}
		}
		if len(members) >= 2 {
			sort.Strings(members)
			orbits = append(orbits, members)
		}
	}
	sort.Slice(orbits, func(i, j int) bool { return orbits[i][0] < orbits[j][0] })
	return orbits
}

// actorSignature renders everything about the actor that exploration depends
// on: each service referencing the actor (flows in declared order, the actor
// itself replaced by a placeholder, all other node IDs literal) and the
// actor's full grant matrix. Two actors with equal signatures declare
// isomorphic behaviour.
func actorSignature(m *dataflow.Model, aid string, grantFields []string, perms []accesscontrol.Permission) string {
	ren := func(id string) string {
		if id == aid {
			return "@"
		}
		return id
	}
	var b strings.Builder
	for _, svcID := range m.ServiceIDs() {
		flows := m.ServiceFlows(svcID)
		refs := false
		for _, f := range flows {
			if f.From == aid || f.To == aid {
				refs = true
				break
			}
		}
		if !refs {
			continue
		}
		b.WriteString("svc{")
		for _, f := range flows {
			fmt.Fprintf(&b, "%d:%s->%s[%s][%s]%v;",
				f.Order, ren(f.From), ren(f.To),
				strings.Join(f.Fields, ","), strings.Join(f.Authored, ","), f.Delete)
		}
		b.WriteString("}")
	}
	b.WriteString("grants{")
	if m.Policy != nil {
		for _, store := range m.DatastoreIDs() {
			for _, field := range grantFields {
				for _, perm := range perms {
					if m.Policy.Allows(aid, store, field, perm) {
						fmt.Fprintf(&b, "%s.%s.%s;", store, field, perm)
					}
				}
			}
		}
	}
	b.WriteString("}")
	return b.String()
}
