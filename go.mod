module privascope

go 1.24
