package privascope_test

import (
	"strings"
	"testing"

	"privascope"
	"privascope/internal/casestudy"
	"privascope/internal/synth"
)

// buildClinic assembles a small model entirely through the public facade.
func buildClinic(t testing.TB) *privascope.Model {
	t.Helper()
	acl, err := privascope.NewACL(
		privascope.Grant{Actor: "doctor", Datastore: "ehr", Fields: []string{privascope.AllFields},
			Permissions: []privascope.Permission{privascope.PermissionRead, privascope.PermissionWrite}},
		privascope.Grant{Actor: "admin", Datastore: "ehr", Fields: []string{privascope.AllFields},
			Permissions: []privascope.Permission{privascope.PermissionRead}, Reason: "maintenance"},
	)
	if err != nil {
		t.Fatalf("NewACL: %v", err)
	}
	b := privascope.NewModelBuilder("facade-clinic", privascope.Actor{ID: "patient", Name: "Patient"})
	b.AddActors(
		privascope.Actor{ID: "doctor", Name: "Doctor"},
		privascope.Actor{ID: "admin", Name: "Administrator"},
	)
	b.AddDatastore(privascope.Datastore{ID: "ehr", Name: "EHR", Schema: mustSchema(t)})
	b.AddService(privascope.Service{ID: "care", Name: "Care"})
	b.Flow("care", "patient", "doctor", []string{"name", "diagnosis"}, "consultation")
	b.Flow("care", "doctor", "ehr", []string{"name", "diagnosis"}, "record")
	b.WithPolicy(acl)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func mustSchema(t testing.TB) privascope.Schema {
	t.Helper()
	s := privascope.Schema{
		Name: "ehr",
		Fields: []privascope.Field{
			{Name: "name", Category: privascope.CategoryIdentifier},
			{Name: "diagnosis", Category: privascope.CategorySensitive},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAssessPipeline(t *testing.T) {
	model := buildClinic(t)
	profile := privascope.UserProfile{
		ID:                 "alice",
		ConsentedServices:  []string{"care"},
		Sensitivities:      map[string]float64{"diagnosis": privascope.SensitivityHigh},
		DefaultSensitivity: 0.1,
	}
	result, err := privascope.Assess(model, profile, privascope.AssessOptions{})
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	if result.PrivacyModel.Stats().States == 0 {
		t.Error("empty privacy model")
	}
	if result.Assessment.OverallRisk < privascope.RiskMedium {
		t.Errorf("overall risk = %v, want at least medium (admin can read the diagnosis)", result.Assessment.OverallRisk)
	}
	text := result.Report.Render()
	for _, want := range []string{"facade-clinic", "Findings", "admin"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Invalid model propagates an error.
	if _, err := privascope.Assess(&privascope.Model{}, profile, privascope.AssessOptions{}); err == nil {
		t.Error("Assess of invalid model should fail")
	}
}

func TestFacadeGenerateAndAnalyze(t *testing.T) {
	model := buildClinic(t)
	p, err := privascope.GenerateWithOptions(model, privascope.GenerateOptions{
		FlowOrdering:   privascope.OrderSequential,
		PotentialReads: privascope.PotentialReadsTerminal,
	})
	if err != nil {
		t.Fatalf("GenerateWithOptions: %v", err)
	}
	profile := privascope.UserProfile{ID: "alice", ConsentedServices: []string{"care"},
		Sensitivities: map[string]float64{"diagnosis": privascope.SensitivityHigh}}
	assessment, err := privascope.AnalyzeDisclosure(p, profile, privascope.RiskConfig{})
	if err != nil {
		t.Fatalf("AnalyzeDisclosure: %v", err)
	}
	if got := assessment.MaxRiskFor("admin"); got != privascope.RiskMedium {
		t.Errorf("admin risk = %v, want medium", got)
	}
	if out := privascope.RenderAssessment(assessment); !strings.Contains(out, "admin") {
		t.Error("RenderAssessment missing admin")
	}
	if out := privascope.RenderModelSummary(p); !strings.Contains(out, "states") {
		t.Error("RenderModelSummary missing states")
	}
	changes := privascope.CompareAssessments(nil, assessment)
	if len(changes) == 0 {
		t.Error("CompareAssessments returned nothing")
	}
}

func TestFacadePseudonymisation(t *testing.T) {
	p, err := privascope.GenerateWithOptions(casestudy.Metrics(), privascope.GenerateOptions{
		FlowOrdering:   privascope.OrderDataDriven,
		PotentialReads: privascope.PotentialReadsOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	evaluator, err := privascope.NewValueRiskEvaluator(casestudy.TableIRecords(), casestudy.ResearchPolicy())
	if err != nil {
		t.Fatalf("NewValueRiskEvaluator: %v", err)
	}
	scenario, err := evaluator.Evaluate([]string{"age", "height"})
	if err != nil {
		t.Fatal(err)
	}
	if scenario.Violations != 4 {
		t.Errorf("violations = %d, want 4", scenario.Violations)
	}
	annotation, err := privascope.AnalyzePseudonymisation(p, privascope.PseudonymisationOptions{
		Actor:  casestudy.ActorResearcher,
		Policy: casestudy.ResearchPolicy(),
		Table:  casestudy.TableIRecords(),
	})
	if err != nil {
		t.Fatalf("AnalyzePseudonymisation: %v", err)
	}
	if annotation.MaxViolations() != 4 {
		t.Errorf("MaxViolations = %d, want 4", annotation.MaxViolations())
	}
}

func TestFacadeKAnonymizeAndSynthetics(t *testing.T) {
	table := privascope.SyntheticHealthRecords(synth.HealthRecordsOptions{Rows: 30, Seed: 2})
	anon, result, err := privascope.KAnonymize(table, []string{"age", "height"}, 3)
	if err != nil {
		t.Fatalf("KAnonymize: %v", err)
	}
	if anon.NumRows() != 30 {
		t.Errorf("anonymised rows = %d", anon.NumRows())
	}
	if result.K != 3 {
		t.Errorf("result.K = %d", result.K)
	}

	model := privascope.SyntheticModel(synth.ModelSpec{Services: 2, FieldsPerService: 2})
	if err := model.Validate(); err != nil {
		t.Fatalf("synthetic model invalid: %v", err)
	}
	profiles := privascope.SyntheticPopulation(model, synth.PopulationOptions{Users: 5, Seed: 1})
	if len(profiles) != 5 {
		t.Errorf("profiles = %d", len(profiles))
	}
}

func TestFacadeComplianceAndPolicies(t *testing.T) {
	p, err := privascope.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	medical := privascope.DerivePolicy(p, casestudy.ServiceMedical)
	research := privascope.DerivePolicy(p, casestudy.ServiceResearch)
	reportOut, err := privascope.CheckCompliance(p, medical, research)
	if err != nil {
		t.Fatalf("CheckCompliance: %v", err)
	}
	if !reportOut.Compliant {
		t.Errorf("derived policies should be compliant: %+v", reportOut.Violations)
	}
	partial, err := privascope.CheckCompliance(p, medical)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Compliant {
		t.Error("partial policy coverage should not be compliant")
	}
}

func TestFacadeSaveLoadModel(t *testing.T) {
	model := buildClinic(t)
	path := t.TempDir() + "/model.json"
	if err := privascope.SaveModel(model, path); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	loaded, err := privascope.LoadModel(path)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if loaded.Name != model.Name {
		t.Errorf("loaded name = %q", loaded.Name)
	}
	if loaded.Policy == nil {
		t.Error("loaded model lost its policy")
	}
}

func TestFacadeRuntimeMonitoring(t *testing.T) {
	p, err := privascope.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := privascope.NewMonitor(p, privascope.MonitorConfig{})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	if err := monitor.RegisterUser(casestudy.PatientProfile()); err != nil {
		t.Fatalf("RegisterUser: %v", err)
	}
	if got := monitor.Users(); len(got) != 1 {
		t.Errorf("Users() = %v", got)
	}
}
