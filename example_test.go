package privascope_test

import (
	"fmt"

	"privascope"
	"privascope/internal/casestudy"
)

// ExampleAssess runs the paper's case study IV-A through the one-call
// pipeline: the patient consents only to the Medical Service, the
// administrator's maintenance access to the EHR surfaces as a medium risk,
// and the access-policy mitigation reduces it.
func ExampleAssess() {
	profile := casestudy.PatientProfile()

	before, err := privascope.Assess(casestudy.Surgery(), profile, privascope.AssessOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	after, err := privascope.Assess(
		casestudy.SurgeryWithPolicy(casestudy.MitigatedSurgeryACL()), profile, privascope.AssessOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	fmt.Println("administrator risk before mitigation:",
		before.Assessment.MaxRiskFor(casestudy.ActorAdministrator))
	fmt.Println("administrator risk after mitigation: ",
		after.Assessment.MaxRiskFor(casestudy.ActorAdministrator))
	// Output:
	// administrator risk before mitigation: medium
	// administrator risk after mitigation:  low
}

// ExampleNewValueRiskEvaluator reproduces the violation counts of the paper's
// Table I: as the researcher sees more quasi-identifiers, more records
// violate the "weight within 5 kg at 90% confidence" policy.
func ExampleNewValueRiskEvaluator() {
	evaluator, err := privascope.NewValueRiskEvaluator(
		casestudy.TableIRecords(), casestudy.ResearchPolicy())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, visible := range [][]string{{"height"}, {"age"}, {"age", "height"}} {
		result, err := evaluator.Evaluate(visible)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("visible %v: %d violations\n", result.VisibleFields, result.Violations)
	}
	// Output:
	// visible [height]: 0 violations
	// visible [age]: 2 violations
	// visible [age height]: 4 violations
}

// ExampleGenerate shows the size of the formal privacy model generated for
// the doctors'-surgery system of Fig. 1.
func ExampleGenerate() {
	p, err := privascope.Generate(casestudy.Surgery())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stats := p.Stats()
	fmt.Printf("actors=%d fields=%d state-variables=%d\n", stats.Actors, stats.Fields, stats.StateVariables)
	fmt.Printf("states=%d transitions=%d potential-reads=%d\n",
		stats.States, stats.Transitions, stats.PotentialTransitions)
	// Output:
	// actors=5 fields=10 state-variables=100
	// states=47 transitions=49 potential-reads=34
}
