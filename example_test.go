package privascope_test

import (
	"bytes"
	"encoding/json"
	"fmt"

	"privascope"
	"privascope/internal/casestudy"
)

// ExampleAssess runs the paper's case study IV-A through the one-call
// pipeline: the patient consents only to the Medical Service, the
// administrator's maintenance access to the EHR surfaces as a medium risk,
// and the access-policy mitigation reduces it.
func ExampleAssess() {
	profile := casestudy.PatientProfile()

	before, err := privascope.Assess(casestudy.Surgery(), profile, privascope.AssessOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	after, err := privascope.Assess(
		casestudy.SurgeryWithPolicy(casestudy.MitigatedSurgeryACL()), profile, privascope.AssessOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	fmt.Println("administrator risk before mitigation:",
		before.Assessment.MaxRiskFor(casestudy.ActorAdministrator))
	fmt.Println("administrator risk after mitigation: ",
		after.Assessment.MaxRiskFor(casestudy.ActorAdministrator))
	// Output:
	// administrator risk before mitigation: medium
	// administrator risk after mitigation:  low
}

// ExampleNewValueRiskEvaluator reproduces the violation counts of the paper's
// Table I: as the researcher sees more quasi-identifiers, more records
// violate the "weight within 5 kg at 90% confidence" policy.
func ExampleNewValueRiskEvaluator() {
	evaluator, err := privascope.NewValueRiskEvaluator(
		casestudy.TableIRecords(), casestudy.ResearchPolicy())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, visible := range [][]string{{"height"}, {"age"}, {"age", "height"}} {
		result, err := evaluator.Evaluate(visible)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("visible %v: %d violations\n", result.VisibleFields, result.Violations)
	}
	// Output:
	// visible [height]: 0 violations
	// visible [age]: 2 violations
	// visible [age height]: 4 violations
}

// ExampleGenerateWithOptions generates the privacy LTS with the parallel
// exploration engine: Workers goroutines expand the BFS frontier
// concurrently, and the merged result — state IDs, transition order, initial
// state — is byte-identical no matter how many workers explored it.
func ExampleGenerateWithOptions() {
	model := casestudy.Surgery()

	serial, err := privascope.GenerateWithOptions(model, privascope.GenerateOptions{Workers: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	parallel, err := privascope.GenerateWithOptions(model, privascope.GenerateOptions{Workers: 8})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(parallel)
	fmt.Printf("states=%d transitions=%d\n", parallel.Stats().States, parallel.Stats().Transitions)
	fmt.Println("identical across worker counts:", bytes.Equal(a, b))
	// Output:
	// states=47 transitions=49
	// identical across worker counts: true
}

// ExampleGenerateWithOptions_workers shows the default worker count: leaving
// Workers at zero uses one exploration goroutine per available CPU, so large
// models are generated as fast as the hardware allows without any
// configuration — and still produce exactly the same model as a
// single-worker run.
func ExampleGenerateWithOptions_workers() {
	opts := privascope.GenerateOptions{
		FlowOrdering:   privascope.OrderDataDriven,
		PotentialReads: privascope.PotentialReadsOff,
		// Workers: 0 selects runtime.GOMAXPROCS(0) workers.
	}
	defaulted, err := privascope.GenerateWithOptions(casestudy.Surgery(), opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	opts.Workers = 1
	serial, err := privascope.GenerateWithOptions(casestudy.Surgery(), opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a, _ := json.Marshal(defaulted)
	b, _ := json.Marshal(serial)
	fmt.Println("states:", defaulted.Stats().States)
	fmt.Println("default workers match single-worker output:", bytes.Equal(a, b))
	// Output:
	// states: 20
	// default workers match single-worker output: true
}

// ExampleGenerate shows the size of the formal privacy model generated for
// the doctors'-surgery system of Fig. 1.
func ExampleGenerate() {
	p, err := privascope.Generate(casestudy.Surgery())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stats := p.Stats()
	fmt.Printf("actors=%d fields=%d state-variables=%d\n", stats.Actors, stats.Fields, stats.StateVariables)
	fmt.Printf("states=%d transitions=%d potential-reads=%d\n",
		stats.States, stats.Transitions, stats.PotentialTransitions)
	// Output:
	// actors=5 fields=10 state-variables=100
	// states=47 transitions=49 potential-reads=34
}
