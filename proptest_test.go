package privascope_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	privascope "privascope"
	"privascope/internal/proptest"
	"privascope/internal/proptest/scenario"
	"privascope/internal/testutil"
)

// TestPropEngineCachedMatchesCold is the cache-vs-cold equivalence property
// on the random corpus: a warm Engine (second Assess of the same model) must
// return exactly the assessment and rendered report a cold Engine returns,
// and the warm engine must not have generated the model again.
func TestPropEngineCachedMatchesCold(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		ctx := context.Background()

		warm := privascope.MustEngine(privascope.EngineOptions{})
		first, err := warm.Assess(ctx, s.Model, s.Profiles[0])
		if err != nil {
			return err
		}
		cached, err := warm.Assess(ctx, s.Model, s.Profiles[0])
		if err != nil {
			return err
		}
		if got := warm.Generations(); got != 1 {
			t.Fatalf("seed %d: warm engine generated the model %d times, want 1", seed, got)
		}
		if !reflect.DeepEqual(first.Assessment, cached.Assessment) {
			t.Fatalf("seed %d: cached assessment differs from the first", seed)
		}

		cold := privascope.MustEngine(privascope.EngineOptions{})
		fresh, err := cold.Assess(ctx, s.Model, s.Profiles[0])
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(fresh.Assessment, cached.Assessment) {
			t.Fatalf("seed %d: cold engine's assessment differs from the cached one", seed)
		}
		if got, want := cached.Report.Render(), fresh.Report.Render(); got != want {
			t.Fatalf("seed %d: cached report differs from cold report:\n%s\nvs\n%s", seed, got, want)
		}
		return nil
	})
}

// TestPropEngineCancellationIsClean: cancelling an Engine pipeline mid-model
// either returns context.Canceled or completes, and never strands a
// goroutine; a subsequent call on the same engine still succeeds.
func TestPropEngineCancellationIsClean(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		engine := privascope.MustEngine(privascope.EngineOptions{})

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := engine.Assess(ctx, s.Model, s.Profiles[0]); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: cancelled Assess returned %v, want context.Canceled or nil", seed, err)
		}
		if _, err := engine.Assess(context.Background(), s.Model, s.Profiles[0]); err != nil {
			t.Fatalf("seed %d: Assess after a cancelled attempt failed: %v", seed, err)
		}
		return nil
	})
}

// TestPropAssessPopulationMatchesPerProfile: the population pipeline returns
// the same per-profile assessments as assessing each profile individually.
func TestPropAssessPopulationMatchesPerProfile(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		ctx := context.Background()
		engine := privascope.MustEngine(privascope.EngineOptions{})

		population, err := engine.AssessPopulation(ctx, s.Model, s.Profiles)
		if err != nil {
			return err
		}
		if len(population.Users) != len(s.Profiles) {
			t.Fatalf("seed %d: population assessed %d profiles, want %d",
				seed, len(population.Users), len(s.Profiles))
		}
		for i, profile := range s.Profiles {
			single, err := engine.Analyze(ctx, s.Model, profile)
			if err != nil {
				return err
			}
			user := population.Users[i]
			if user.UserID != profile.ID {
				t.Fatalf("seed %d: population user %d is %s, want %s", seed, i, user.UserID, profile.ID)
			}
			if user.OverallRisk != single.OverallRisk || user.Findings != len(single.Findings) {
				t.Fatalf("seed %d: population summary of %s (risk %s, %d findings) differs from individual analysis (risk %s, %d findings)",
					seed, profile.ID, user.OverallRisk, user.Findings, single.OverallRisk, len(single.Findings))
			}
		}
		return nil
	})
}

// TestPropEngineWarmRegistryColdStart: an Engine cold-started over a warm
// persistent model registry (EngineOptions.CacheDir) performs zero LTS
// generations — every model comes from disk — and its assessment and
// rendered report are byte-identical to the generated path.
func TestPropEngineWarmRegistryColdStart(t *testing.T) {
	dir := t.TempDir()
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		ctx := context.Background()

		writer := privascope.MustEngine(privascope.EngineOptions{CacheDir: dir})
		baseline, err := writer.Assess(ctx, s.Model, s.Profiles[0])
		if err != nil {
			return err
		}
		if g, l := writer.Generations(), writer.Loads(); g != 1 || l != 0 {
			t.Fatalf("seed %d: writer engine generated %d and loaded %d, want 1 and 0", seed, g, l)
		}

		cold := privascope.MustEngine(privascope.EngineOptions{CacheDir: dir})
		loaded, err := cold.Assess(ctx, s.Model, s.Profiles[0])
		if err != nil {
			return err
		}
		if g, l := cold.Generations(), cold.Loads(); g != 0 || l != 1 {
			t.Fatalf("seed %d: warm-registry cold start generated %d and loaded %d, want 0 and 1", seed, g, l)
		}
		if !reflect.DeepEqual(baseline.Assessment, loaded.Assessment) {
			t.Fatalf("seed %d: assessment from the loaded model differs from the generated one", seed)
		}
		if got, want := loaded.Report.Render(), baseline.Report.Render(); got != want {
			t.Fatalf("seed %d: report from the loaded model differs:\n%s\nvs\n%s", seed, got, want)
		}
		return nil
	})
}
