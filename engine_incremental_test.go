package privascope_test

import (
	"context"
	"encoding/json"
	"testing"

	"privascope"
	"privascope/internal/accesscontrol"
	"privascope/internal/casestudy"
)

// TestEngineIncrementalRegeneration: an incremental engine fed a sequence of
// near-identical models must replay its previous exploration for the
// policy-only edit (IncrementalHits counts it) and still produce exactly the
// assessment and report a cold engine produces for the same model.
func TestEngineIncrementalRegeneration(t *testing.T) {
	ctx := context.Background()
	profile := casestudy.PatientProfile()

	before := casestudy.Surgery()
	after := casestudy.Surgery()
	after.Policy = after.Policy.(*accesscontrol.ACL).WithoutActor(
		casestudy.ActorResearcher, casestudy.StoreAnonEHR)

	inc := privascope.MustEngine(privascope.EngineOptions{Incremental: true})
	if _, err := inc.Assess(ctx, before, profile); err != nil {
		t.Fatal(err)
	}
	if got := inc.IncrementalHits(); got != 0 {
		t.Fatalf("IncrementalHits after first (seedless) generation = %d, want 0", got)
	}
	got, err := inc.Assess(ctx, after, profile)
	if err != nil {
		t.Fatal(err)
	}
	if hits := inc.IncrementalHits(); hits != 1 {
		t.Fatalf("IncrementalHits after policy-delta generation = %d, want 1", hits)
	}
	if gens := inc.Generations(); gens != 2 {
		t.Fatalf("Generations = %d, want 2 (both models generated, one via replay)", gens)
	}

	cold := privascope.MustEngine(privascope.EngineOptions{})
	want, err := cold.Assess(ctx, after, profile)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := mustJSON(t, got.Assessment), mustJSON(t, want.Assessment); g != w {
		t.Fatalf("incremental assessment differs from cold assessment:\n%s\nvs\n%s", g, w)
	}
	if g, w := mustJSON(t, got.Report), mustJSON(t, want.Report); g != w {
		t.Fatalf("incremental report differs from cold report:\n%s\nvs\n%s", g, w)
	}
	if g, w := mustJSON(t, got.PrivacyModel), mustJSON(t, want.PrivacyModel); g != w {
		t.Fatalf("incremental privacy model JSON differs from cold generation")
	}
}

// TestEngineIncrementalStructuralChange: a structural edit (different case
// study) must not poison an incremental engine — it falls back to a cold
// generation without counting a hit.
func TestEngineIncrementalStructuralChange(t *testing.T) {
	ctx := context.Background()
	inc := privascope.MustEngine(privascope.EngineOptions{Incremental: true})
	if _, err := inc.Model(ctx, casestudy.Surgery()); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Model(ctx, casestudy.Metrics()); err != nil {
		t.Fatal(err)
	}
	if got := inc.IncrementalHits(); got != 0 {
		t.Fatalf("IncrementalHits across structurally different models = %d, want 0", got)
	}

	cold := privascope.MustEngine(privascope.EngineOptions{})
	want, err := cold.Model(ctx, casestudy.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Model(ctx, casestudy.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
		t.Fatal("fallback generation differs from cold generation")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}
