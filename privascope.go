// Package privascope is a model-driven toolkit for identifying privacy risks
// in distributed data services. It reproduces, as a reusable Go library, the
// approach of Grace et al., "Identifying Privacy Risks in Distributed Data
// Services: A Model-Driven Approach" (ICDCS 2018):
//
//  1. Developers describe their system as a purpose-driven data-flow model —
//     actors, datastores with schemas, services made of ordered flows — plus
//     access-control policies (ACL or RBAC).
//  2. The toolkit automatically generates a formal model of user privacy: a
//     Labelled Transition System whose states carry, for every (actor,
//     field) pair, whether the actor HAS identified or COULD identify the
//     field, and whose transitions are the paper's six actions on personal
//     data (collect, create, read, disclose, anon, delete). Generation is a
//     parallel, memory-compact state-space exploration: states are encoded
//     as fixed-width bit vectors hashed into a sharded visited set, and a
//     configurable worker pool (GenerateOptions.Workers, one worker per CPU
//     by default) expands the BFS frontier with deterministic merging, so
//     the generated model is byte-identical for any worker count. See
//     docs/ARCHITECTURE.md for the engine design.
//  3. Automated analyses run over the generated model: unwanted-disclosure
//     risk per user profile (impact × likelihood through a risk matrix),
//     pseudonymisation value risk against a dataset (the k-anonymity value
//     risk of the paper's Table I / Fig. 4), and compliance of the modelled
//     behaviour with the services' stated privacy policies.
//  4. The same model monitors the running system: the runtime monitor maps
//     live datastore events onto the LTS and raises alerts when risky or
//     unmodelled behaviour is observed.
//
// This package is the stable public facade: it re-exports the types of the
// internal packages under one roof and offers one-call pipelines for the
// common workflows. The internal packages remain importable within this
// module for fine-grained control; see the package documentation of
// internal/core, internal/risk, internal/pseudorisk and internal/runtime.
//
// The API is context-first: every potentially long-running entry point has a
// ...Context form (GenerateContext, AssessContext,
// AnalyzeDisclosurePopulationContext, Evaluator.EvaluateProgressionContext,
// Monitor.ObserveBatchContext, ...) whose worker pools observe cancellation
// at chunk boundaries, return ctx.Err() promptly and never leak goroutines;
// the context-free names remain as thin context.Background() wrappers. For
// the paper's generate-once/analyse-many workflow, hold a long-lived Engine:
// it caches generated privacy models by content fingerprint and shares risk
// analyses across same-shaped profiles, safely across goroutines.
//
// # Quick start
//
//	model := privascope.NewModelBuilder("clinic", privascope.Actor{ID: "patient", Name: "Patient"}).
//		AddActor(privascope.Actor{ID: "doctor", Name: "Doctor"}).
//		// ... datastores, services, flows ...
//		Build()
//
//	engine, err := privascope.NewEngine(privascope.EngineOptions{})
//	// per user/request; the privacy LTS is generated once and cached:
//	result, err := engine.Assess(ctx, model, profile)
//	fmt.Println(result.Report.Render())
//
// See the examples directory for complete, runnable programs, including the
// paper's two case studies.
package privascope

import (
	"context"
	"fmt"

	"privascope/internal/accesscontrol"
	"privascope/internal/anonymize"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/policy"
	"privascope/internal/pseudorisk"
	"privascope/internal/report"
	"privascope/internal/risk"
	"privascope/internal/runtime"
	"privascope/internal/schema"
	"privascope/internal/service"
	"privascope/internal/synth"
)

// ---------------------------------------------------------------------------
// Modelling (data-flow models, schemas, access control).
// ---------------------------------------------------------------------------

// Modelling types re-exported from the internal packages.
type (
	// Model is a data-flow model of a privacy-aware system.
	Model = dataflow.Model
	// ModelBuilder assembles a Model incrementally.
	ModelBuilder = dataflow.Builder
	// Actor is an individual or role type handling personal data.
	Actor = dataflow.Actor
	// Flow is one data-flow arrow (fields, purpose, order).
	Flow = dataflow.Flow
	// Service is a business process composed of ordered flows.
	Service = dataflow.Service

	// Schema describes the record layout of a datastore.
	Schema = schema.Schema
	// Field is one personal-data field of a schema.
	Field = schema.Field
	// Datastore is a persistent store of personal data.
	Datastore = schema.Datastore
	// FieldCategory classifies a field's identification role.
	FieldCategory = schema.Category

	// AccessPolicy is the interface implemented by ACL and RBAC policies.
	AccessPolicy = accesscontrol.Policy
	// ACL is an access-control-list policy.
	ACL = accesscontrol.ACL
	// RBAC is a role-based access-control policy.
	RBAC = accesscontrol.RBAC
	// Grant is a single access-control grant.
	Grant = accesscontrol.Grant
	// Permission is the kind of access requested on a field.
	Permission = accesscontrol.Permission
)

// Field categories.
const (
	CategoryStandard        = schema.CategoryStandard
	CategoryIdentifier      = schema.CategoryIdentifier
	CategoryQuasiIdentifier = schema.CategoryQuasiIdentifier
	CategorySensitive       = schema.CategorySensitive
)

// Permissions.
const (
	PermissionRead   = accesscontrol.PermissionRead
	PermissionWrite  = accesscontrol.PermissionWrite
	PermissionDelete = accesscontrol.PermissionDelete
	// AllFields is the wildcard field name in grants.
	AllFields = accesscontrol.AllFields
)

// NewModelBuilder starts a data-flow model for the named system and data
// subject.
func NewModelBuilder(name string, user Actor) *ModelBuilder {
	return dataflow.NewBuilder(name, user)
}

// NewACL builds an access-control-list policy from grants.
func NewACL(grants ...Grant) (*ACL, error) { return accesscontrol.NewACL(grants...) }

// NewRBAC returns an empty role-based access-control policy.
func NewRBAC() *RBAC { return accesscontrol.NewRBAC() }

// LoadModel reads a model document (with its ACL) from a JSON file.
func LoadModel(path string) (*Model, error) { return dataflow.Load(path) }

// SaveModel writes a model document (with its ACL) to a JSON file.
func SaveModel(m *Model, path string) error { return dataflow.Save(m, path) }

// ---------------------------------------------------------------------------
// Privacy-model generation (the paper's Section II-B).
// ---------------------------------------------------------------------------

// Generation types re-exported from internal/core.
type (
	// PrivacyModel is the generated formal model of user privacy (an LTS
	// with privacy state vectors).
	PrivacyModel = core.PrivacyLTS
	// GenerateOptions configures LTS generation: flow ordering, potential
	// reads, the state cap, and the number of parallel exploration workers.
	GenerateOptions = core.Options
	// ExploreOptions selects the exploration strategy (GenerateOptions.Explore):
	// symmetry-reduced exploration visits one canonical representative per
	// orbit of interchangeable actors and expands back to the identical LTS.
	ExploreOptions = core.ExploreOptions
	// Action is one of the six actions on personal data.
	Action = core.Action
	// StateVector is the set of Boolean state variables of a privacy state.
	StateVector = core.StateVector
	// TransitionLabel is the label attached to every generated transition.
	TransitionLabel = core.TransitionLabel
)

// Actions on personal data.
const (
	ActionCollect  = core.ActionCollect
	ActionCreate   = core.ActionCreate
	ActionRead     = core.ActionRead
	ActionDisclose = core.ActionDisclose
	ActionAnon     = core.ActionAnon
	ActionDelete   = core.ActionDelete
)

// Flow orderings and potential-read modes for GenerateOptions.
const (
	OrderSequential        = core.OrderSequential
	OrderDataDriven        = core.OrderDataDriven
	PotentialReadsOff      = core.PotentialReadsOff
	PotentialReadsTerminal = core.PotentialReadsTerminal
	PotentialReadsFull     = core.PotentialReadsFull
)

// Generate builds the privacy LTS for a model with default options.
func Generate(m *Model) (*PrivacyModel, error) { return core.Generate(m) }

// GenerateWithOptions builds the privacy LTS with explicit options.
func GenerateWithOptions(m *Model, opts GenerateOptions) (*PrivacyModel, error) {
	return core.GenerateWithOptions(m, opts)
}

// GenerateContext builds the privacy LTS with default options, honouring
// cancellation and deadlines carried by ctx: the parallel BFS polls ctx at
// state granularity and aborts mid-exploration with ctx.Err(), leaking no
// goroutines.
func GenerateContext(ctx context.Context, m *Model) (*PrivacyModel, error) {
	return core.GenerateContext(ctx, m)
}

// GenerateWithOptionsContext is GenerateWithOptions with cancellation; see
// GenerateContext.
func GenerateWithOptionsContext(ctx context.Context, m *Model, opts GenerateOptions) (*PrivacyModel, error) {
	return core.GenerateWithOptionsContext(ctx, m, opts)
}

// ---------------------------------------------------------------------------
// Unwanted-disclosure risk analysis (Section III-A).
// ---------------------------------------------------------------------------

// Risk-analysis types re-exported from internal/risk.
type (
	// UserProfile captures a user's consented services and field
	// sensitivities.
	UserProfile = risk.UserProfile
	// RiskLevel is a qualitative risk category (none/low/medium/high).
	RiskLevel = risk.Level
	// RiskMatrix buckets impact and likelihood and maps them to risk.
	RiskMatrix = risk.Matrix
	// RiskConfig configures the disclosure-risk analyzer.
	RiskConfig = risk.Config
	// RiskFinding is one assessed disclosure event.
	RiskFinding = risk.Finding
	// RiskAssessment is the per-user analysis result.
	RiskAssessment = risk.Assessment
	// RiskChange is a before/after comparison entry.
	RiskChange = risk.Change
)

// Risk levels and canonical sensitivities.
const (
	RiskNone   = risk.LevelNone
	RiskLow    = risk.LevelLow
	RiskMedium = risk.LevelMedium
	RiskHigh   = risk.LevelHigh

	SensitivityLow    = risk.SensitivityLow
	SensitivityMedium = risk.SensitivityMedium
	SensitivityHigh   = risk.SensitivityHigh
)

// AnalyzeDisclosure assesses a user profile against a generated privacy
// model using the given configuration (zero value for defaults).
func AnalyzeDisclosure(p *PrivacyModel, profile UserProfile, cfg RiskConfig) (*RiskAssessment, error) {
	return AnalyzeDisclosureContext(context.Background(), p, profile, cfg)
}

// AnalyzeDisclosureContext is AnalyzeDisclosure with cancellation: the
// analysis polls ctx while walking the model's transitions and aborts with
// ctx.Err() when the caller cancels or the deadline passes.
func AnalyzeDisclosureContext(ctx context.Context, p *PrivacyModel, profile UserProfile, cfg RiskConfig) (*RiskAssessment, error) {
	analyzer, err := risk.NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	return analyzer.AnalyzeContext(ctx, p, profile)
}

// CompareAssessments reports how per-event risk levels changed between two
// assessments (for example before and after an access-policy mitigation).
func CompareAssessments(before, after *RiskAssessment) []RiskChange {
	return risk.Compare(before, after)
}

// PopulationAssessment aggregates per-user assessments over a population of
// (real or simulated) users.
type PopulationAssessment = risk.PopulationAssessment

// AnalyzeDisclosurePopulation assesses every profile against the privacy
// model and aggregates the results ("there is an instance for each user").
func AnalyzeDisclosurePopulation(p *PrivacyModel, profiles []UserProfile, cfg RiskConfig) (*PopulationAssessment, error) {
	return AnalyzeDisclosurePopulationContext(context.Background(), p, profiles, cfg)
}

// AnalyzeDisclosurePopulationContext is AnalyzeDisclosurePopulation with
// cancellation: ctx is polled between profiles and inside each underlying
// analysis, so a million-user scan aborts promptly with ctx.Err().
func AnalyzeDisclosurePopulationContext(ctx context.Context, p *PrivacyModel, profiles []UserProfile, cfg RiskConfig) (*PopulationAssessment, error) {
	analyzer, err := risk.NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	return analyzer.AnalyzePopulationContext(ctx, p, profiles)
}

// ---------------------------------------------------------------------------
// Pseudonymisation (value) risk analysis (Section III-B).
// ---------------------------------------------------------------------------

// Pseudonymisation-risk types re-exported from internal/pseudorisk and
// internal/anonymize.
type (
	// DataTable is an in-memory record table.
	DataTable = anonymize.Table
	// DataColumn describes one column of a DataTable.
	DataColumn = anonymize.Column
	// DataValue is one table cell.
	DataValue = anonymize.Value
	// ViolationPolicy is the policy value risks are checked against.
	ViolationPolicy = pseudorisk.Policy
	// ValueRiskEvaluator evaluates value risks for one dataset and policy.
	ValueRiskEvaluator = pseudorisk.Evaluator
	// ValueRiskScenario is the outcome for one visible-field set.
	ValueRiskScenario = pseudorisk.ScenarioResult
	// PseudonymisationAnnotation layers value risk onto a privacy model.
	PseudonymisationAnnotation = pseudorisk.Annotation
	// PseudonymisationOptions configures AnalyzePseudonymisation.
	PseudonymisationOptions = pseudorisk.Options
	// ValueRiskEvaluatorOptions tunes an evaluator's worker pool and
	// class-index sharing.
	ValueRiskEvaluatorOptions = pseudorisk.EvaluatorOptions
	// DataClassIndex caches a table's equivalence-class partitions across
	// scenarios and attacker models.
	DataClassIndex = anonymize.ClassIndex
)

// NewValueRiskEvaluator builds an evaluator for a dataset and policy.
func NewValueRiskEvaluator(table *DataTable, p ViolationPolicy) (*ValueRiskEvaluator, error) {
	return pseudorisk.NewEvaluator(table, p)
}

// NewValueRiskEvaluatorWithOptions is NewValueRiskEvaluator with explicit
// worker-pool and class-index options.
func NewValueRiskEvaluatorWithOptions(table *DataTable, p ViolationPolicy, opts ValueRiskEvaluatorOptions) (*ValueRiskEvaluator, error) {
	return pseudorisk.NewEvaluatorWithOptions(table, p, opts)
}

// NewDataClassIndex builds an equivalence-class cache over a table; workers
// bounds the class-building goroutines (0 = one per CPU).
func NewDataClassIndex(t *DataTable, workers int) *DataClassIndex {
	return anonymize.NewClassIndex(t, workers)
}

// AnalyzePseudonymisation layers dataset-driven value risks onto a privacy
// model for one actor (the paper's Fig. 4).
func AnalyzePseudonymisation(p *PrivacyModel, opts PseudonymisationOptions) (*PseudonymisationAnnotation, error) {
	return pseudorisk.AnalyzeLTS(p, opts)
}

// AnalyzePseudonymisationContext is AnalyzePseudonymisation with
// cancellation: ctx is polled between at-risk states and threaded into the
// dataset evaluations (class building and record scoring poll it at chunk
// boundaries), so a cancelled context aborts the annotation promptly with
// ctx.Err().
func AnalyzePseudonymisationContext(ctx context.Context, p *PrivacyModel, opts PseudonymisationOptions) (*PseudonymisationAnnotation, error) {
	return pseudorisk.AnalyzeLTSContext(ctx, p, opts)
}

// KAnonymize produces a k-anonymous version of a table by generalisation and
// suppression of the given quasi-identifiers.
func KAnonymize(t *DataTable, quasiIdentifiers []string, k int) (*DataTable, anonymize.KAnonymizeResult, error) {
	return anonymize.KAnonymize(t, quasiIdentifiers, k, anonymize.KAnonymizeOptions{})
}

// ReidentReport summarises the re-identification risk of a dataset under the
// prosecutor/journalist/marketer attacker models.
type ReidentReport = anonymize.ReidentReport

// ReidentificationRisk computes per-record re-identification risks for the
// dataset given the quasi-identifiers the adversary is assumed to know.
// Records whose risk is at least threshold are counted as at-risk.
func ReidentificationRisk(t *DataTable, quasiIdentifiers []string, threshold float64) (ReidentReport, error) {
	return anonymize.ReidentificationRisk(t, quasiIdentifiers, threshold)
}

// ---------------------------------------------------------------------------
// Policy compliance, runtime monitoring, reporting, synthetic inputs.
// ---------------------------------------------------------------------------

// Remaining re-exports.
type (
	// ServicePolicy is the stated privacy policy of one service.
	ServicePolicy = policy.ServicePolicy
	// PolicyStatement is one clause of a service policy.
	PolicyStatement = policy.Statement
	// ComplianceReport is the result of checking an LTS against policies.
	ComplianceReport = policy.ComplianceReport

	// Event is one operation on personal data observed in the running
	// system.
	Event = service.Event
	// EventLog is an append-only log of events with subscriptions.
	EventLog = service.Log
	// Cluster runs one HTTP datastore server per datastore of a model.
	Cluster = service.Cluster
	// DatastoreClient is a typed HTTP client bound to one actor.
	DatastoreClient = service.Client

	// Monitor tracks per-user privacy state against a privacy model.
	Monitor = runtime.Monitor
	// MonitorConfig configures a Monitor.
	MonitorConfig = runtime.Config
	// Alert is a notification raised by the monitor.
	Alert = runtime.Alert
	// MonitorIngestStats aggregates the counts of Monitor.IngestBatch, the
	// high-throughput ingestion path behind internal/cluster.
	MonitorIngestStats = runtime.IngestStats

	// Report is a renderable analysis report.
	Report = report.Report
)

// CheckCompliance verifies the modelled behaviour against the stated service
// policies.
func CheckCompliance(p *PrivacyModel, policies ...ServicePolicy) (*ComplianceReport, error) {
	set, err := policy.NewPolicySet(policies...)
	if err != nil {
		return nil, err
	}
	return policy.NewChecker(set).Check(p)
}

// DerivePolicy derives a service policy that exactly covers the declared
// flows of the service, as a reviewable starting point.
func DerivePolicy(p *PrivacyModel, serviceID string) ServicePolicy {
	return policy.PolicyFromModelFlows(p, serviceID)
}

// NewMonitor creates a runtime privacy monitor for a generated model.
func NewMonitor(p *PrivacyModel, cfg MonitorConfig) (*Monitor, error) {
	return runtime.NewMonitor(p, cfg)
}

// AssessmentCache deduplicates risk assessments across users with identical
// profile shapes; see risk.AssessmentCache.
type AssessmentCache = risk.AssessmentCache

// NewAssessmentCache wraps a disclosure-risk analyzer (nil for defaults)
// with a profile-fingerprint cache, so populations of same-shaped users are
// analysed once.
func NewAssessmentCache(cfg RiskConfig) (*AssessmentCache, error) {
	analyzer, err := risk.NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	return risk.NewAssessmentCache(analyzer)
}

// NextEventBatch collects the next batch of events from a subscription
// channel: it blocks for the first event, then drains up to max-1 more
// without blocking. A nil return means the channel is closed and drained.
func NextEventBatch(events <-chan Event, max int) []Event {
	return service.NextBatch(events, max)
}

// StartCluster starts one HTTP datastore server per datastore of the model on
// local ports, sharing a single event log.
func StartCluster(m *Model) (*Cluster, error) { return service.StartCluster(m) }

// SyntheticModel generates a synthetic data-flow model of the given size, for
// experimentation and benchmarking.
func SyntheticModel(spec synth.ModelSpec) *Model { return synth.Model(spec) }

// SyntheticPopulation generates user profiles for a model.
func SyntheticPopulation(m *Model, opts synth.PopulationOptions) []UserProfile {
	return synth.Population(m, opts)
}

// SyntheticHealthRecords generates a deterministic physical-attributes
// dataset.
func SyntheticHealthRecords(opts synth.HealthRecordsOptions) *DataTable {
	return synth.HealthRecords(opts)
}

// ---------------------------------------------------------------------------
// One-call pipelines.
// ---------------------------------------------------------------------------

// AssessOptions configures the Assess pipeline.
type AssessOptions struct {
	// Generate configures LTS generation; zero value for defaults
	// (sequential flow ordering, terminal potential reads, one exploration
	// worker per CPU).
	Generate GenerateOptions
	// Risk configures the disclosure-risk analyzer; zero value for defaults.
	Risk RiskConfig
}

// AssessResult bundles the outputs of the Assess pipeline.
type AssessResult struct {
	// PrivacyModel is the generated LTS.
	PrivacyModel *PrivacyModel
	// Assessment is the per-user disclosure-risk assessment.
	Assessment *RiskAssessment
	// Report is a rendered report combining the model summary and the
	// assessment.
	Report *Report
}

// Assess runs the full design-time pipeline for one user profile: validate
// the model, generate the privacy LTS, analyse unwanted-disclosure risk, and
// build a report.
//
// Assess regenerates the LTS on every call. For the paper's generate-once/
// analyse-many workflow — or any server handling more than one request —
// hold an Engine and call Engine.Assess instead: it caches generated models
// by content fingerprint and deduplicates same-shaped profile analyses.
func Assess(m *Model, profile UserProfile, opts AssessOptions) (*AssessResult, error) {
	return AssessContext(context.Background(), m, profile, opts)
}

// AssessContext is Assess with cancellation: generation and analysis both
// poll ctx and abort promptly with ctx.Err() when the caller cancels or the
// deadline passes, leaking no goroutines.
func AssessContext(ctx context.Context, m *Model, profile UserProfile, opts AssessOptions) (*AssessResult, error) {
	p, err := core.GenerateWithOptionsContext(ctx, m, opts.Generate)
	if err != nil {
		return nil, fmt.Errorf("privascope: generating privacy model: %w", err)
	}
	analyzer, err := risk.NewAnalyzer(opts.Risk)
	if err != nil {
		return nil, err
	}
	assessment, err := analyzer.AnalyzeContext(ctx, p, profile)
	if err != nil {
		return nil, fmt.Errorf("privascope: analysing disclosure risk: %w", err)
	}
	return &AssessResult{PrivacyModel: p, Assessment: assessment,
		Report: buildAssessReport(m.Name, p, assessment)}, nil
}

// buildAssessReport composes the combined model-summary + disclosure report
// of an assessment; shared by the Assess pipeline and Engine.Assess so the
// two paths cannot diverge.
func buildAssessReport(modelName string, p *PrivacyModel, assessment *RiskAssessment) *Report {
	combined := report.NewReport("Privacy risk assessment: " + modelName)
	for _, section := range report.ModelSummary(p).Sections() {
		combined.AddTable(section.Title, section.Body, section.Table)
	}
	for _, section := range report.DisclosureAssessment(assessment).Sections() {
		combined.AddTable(section.Title, section.Body, section.Table)
	}
	return combined
}

// RenderAssessment renders a disclosure-risk assessment as a plain-text
// report.
func RenderAssessment(a *RiskAssessment) string {
	return report.DisclosureAssessment(a).Render()
}

// RenderModelSummary renders a summary of a generated privacy model.
func RenderModelSummary(p *PrivacyModel) string {
	return report.ModelSummary(p).Render()
}
