package privascope

import (
	"context"
	"fmt"
	"sync/atomic"

	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/explore"
	"privascope/internal/flight"
	"privascope/internal/modelstore"
	"privascope/internal/risk"
)

// EngineOptions configures a long-lived Engine. The zero value selects the
// defaults everywhere.
type EngineOptions struct {
	// Generate configures LTS generation for every model the engine builds;
	// zero value for defaults (sequential flow ordering, terminal potential
	// reads, one exploration worker per CPU).
	Generate GenerateOptions
	// Risk configures the engine's shared disclosure-risk analyzer; zero
	// value for defaults.
	Risk RiskConfig
	// CacheDir, when non-empty, names a registry directory of persisted
	// compiled models (created if needed) that backs the in-memory model
	// cache as a second tier: a fingerprint miss first tries to load the
	// compiled artifact from disk — skipping state-space generation entirely
	// — and every generated model is written back atomically, so concurrent
	// engines and future processes share it. Corrupt or stale artifacts are
	// detected (checksummed, fingerprint-verified) and regenerated.
	CacheDir string
	// Incremental makes the engine keep the exploration trace of its most
	// recent generation and regenerate the next model incrementally from it
	// (core.Generator.RegenerateContext): when the new model differs from the
	// previous one only in metadata or access policy, exploration replays the
	// stored trace and recomputes just the affected potential reads; any
	// structural change falls back to a full generation. The result is
	// byte-identical to a cold generation either way. Intended for
	// edit-analyse loops where consecutive models are near-identical
	// (policy tuning, what-if analysis).
	Incremental bool
}

// Engine is a long-lived, concurrency-safe analysis session: the
// generate-once/analyse-many entry point the paper's workflow implies (one
// privacy LTS per system model, then disclosure, population and monitoring
// analyses per user and per dataset against it).
//
// The engine caches generated privacy models by ModelFingerprint — a
// canonical content hash, so two loads of the same model document share one
// generation — and shares one RiskConfig-derived analyzer and assessment
// cache across all calls, so same-shaped user profiles are analysed once per
// model. Each cached model carries its lazily-built compiled analysis view
// (the flat CSR graph with pre-resolved labels and state-vector deltas), so a
// model is compiled once per fingerprint and every Assess, Analyze,
// AssessPopulation and Monitor call walks the same compiled core. Both caches are single-flighted: concurrent first requests for the
// same model block on a single generation instead of duplicating it, a
// waiter honours its own context, and a generation aborted by cancellation
// is forgotten rather than cached.
//
// Models handed to an Engine must not be mutated afterwards: the cached
// privacy LTS retains the model, and the fingerprint is computed from its
// content at call time.
//
// Use one Engine per RiskConfig/GenerateOptions combination; construction is
// cheap and engines are independent.
type Engine struct {
	opts        EngineOptions
	analyzer    *risk.Analyzer
	assessments *risk.AssessmentCache
	models      flight.Group[string, *core.PrivacyLTS]
	store       *modelstore.Store
	generator   *core.Generator
	lastGen     atomic.Pointer[lastGeneration]
	generations atomic.Int64
	loads       atomic.Int64
	incremental atomic.Int64
}

// lastGeneration is the replay seed kept by an incremental engine: the most
// recently generated model together with its exploration trace.
type lastGeneration struct {
	p     *core.PrivacyLTS
	trace *explore.Result
}

// NewEngine builds an engine, validating the risk configuration up front and
// opening the persistent model registry when EngineOptions.CacheDir is set.
func NewEngine(opts EngineOptions) (*Engine, error) {
	analyzer, err := risk.NewAnalyzer(opts.Risk)
	if err != nil {
		return nil, err
	}
	cache, err := risk.NewAssessmentCache(analyzer)
	if err != nil {
		return nil, err
	}
	e := &Engine{opts: opts, analyzer: analyzer, assessments: cache,
		generator: core.NewGenerator(opts.Generate)}
	if opts.CacheDir != "" {
		store, err := modelstore.Open(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		e.store = store
	}
	return e, nil
}

// MustEngine is like NewEngine but panics on error; for fixtures and
// examples where the options are known valid.
func MustEngine(opts EngineOptions) *Engine {
	e, err := NewEngine(opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Model returns the generated privacy LTS for the data-flow model,
// generating it at most once per model fingerprint for the lifetime of the
// engine. Concurrent first calls for the same model block on one generation
// (the leader's); a cancelled caller returns its own ctx.Err() immediately,
// and a generation aborted by cancellation is not cached, so the next caller
// regenerates.
//
// Models whose access-control policy cannot be canonically fingerprinted
// (custom Policy implementations) are generated on every call instead of
// being cached; the engine's assessment cache is bypassed for them too, so
// repeated calls cost a full generation + analysis but never accumulate
// engine state.
func (e *Engine) Model(ctx context.Context, m *Model) (*PrivacyModel, error) {
	p, _, err := e.model(ctx, m)
	return p, err
}

// model resolves the (cached) privacy LTS for m; cacheable reports whether
// the model was fingerprintable and therefore lives in (and may share) the
// engine's caches. Per-model analysis results must only be stored in
// engine-lifetime caches when cacheable is true: an unfingerprintable
// model's LTS is a fresh pointer every call, so caching anything under it
// would grow the engine without bound and never hit.
func (e *Engine) model(ctx context.Context, m *Model) (p *PrivacyModel, cacheable bool, err error) {
	fp, err := dataflow.Fingerprint(m)
	if err != nil {
		// Unfingerprintable model: generate uncached rather than guess at
		// identity.
		p, err := e.generate(ctx, m)
		return p, false, err
	}
	p, err = e.models.Do(ctx, fp, func(ctx context.Context) (*core.PrivacyLTS, error) {
		if e.store != nil {
			if loaded, err := e.store.Load(fp, m); err == nil {
				e.loads.Add(1)
				return loaded, nil
			}
			// Missing or invalid artifact: fall through and regenerate; the
			// write below replaces it.
		}
		p, err := e.generate(ctx, m)
		if err == nil && e.store != nil {
			// Persisting is best-effort: a full registry disk must not fail
			// the request, and the next cold start simply regenerates.
			_ = e.store.Save(fp, p)
		}
		return p, err
	})
	return p, true, err
}

// generate runs one instrumented LTS generation. With
// EngineOptions.Incremental it regenerates from the engine's last exploration
// trace where the model delta allows, and reseeds the trace either way.
func (e *Engine) generate(ctx context.Context, m *Model) (*PrivacyModel, error) {
	e.generations.Add(1)
	if e.opts.Incremental {
		var prev *core.PrivacyLTS
		var trace *explore.Result
		if seed := e.lastGen.Load(); seed != nil {
			prev, trace = seed.p, seed.trace
		}
		p, newTrace, report, err := e.generator.RegenerateContext(ctx, prev, trace, m)
		if err != nil {
			return nil, fmt.Errorf("privascope: generating privacy model: %w", err)
		}
		if !report.Fallback {
			e.incremental.Add(1)
		}
		e.lastGen.Store(&lastGeneration{p: p, trace: newTrace})
		return p, nil
	}
	p, err := core.GenerateWithOptionsContext(ctx, m, e.opts.Generate)
	if err != nil {
		return nil, fmt.Errorf("privascope: generating privacy model: %w", err)
	}
	return p, nil
}

// Assess runs the design-time pipeline for one user profile against the
// (cached) privacy model of m: generate-once, analyse, report. On a cache
// hit the generation step is skipped entirely; the disclosure-risk analysis
// is additionally deduplicated by profile shape, so assessing the millionth
// same-shaped user is two cache lookups plus report rendering.
func (e *Engine) Assess(ctx context.Context, m *Model, profile UserProfile) (*AssessResult, error) {
	p, assessment, err := e.analyze(ctx, m, profile)
	if err != nil {
		return nil, err
	}
	return &AssessResult{PrivacyModel: p, Assessment: assessment,
		Report: buildAssessReport(m.Name, p, assessment)}, nil
}

// Analyze returns the disclosure-risk assessment for one profile against the
// (cached) privacy model of m, without building a report.
func (e *Engine) Analyze(ctx context.Context, m *Model, profile UserProfile) (*RiskAssessment, error) {
	_, assessment, err := e.analyze(ctx, m, profile)
	return assessment, err
}

// analyze resolves the model and runs the shape-deduplicated risk analysis,
// skipping the engine-lifetime assessment cache for uncacheable models.
func (e *Engine) analyze(ctx context.Context, m *Model, profile UserProfile) (*PrivacyModel, *RiskAssessment, error) {
	p, cacheable, err := e.model(ctx, m)
	if err != nil {
		return nil, nil, err
	}
	var assessment *RiskAssessment
	if cacheable {
		assessment, err = e.assessments.AnalyzeContext(ctx, p, profile)
	} else {
		assessment, err = e.analyzer.AnalyzeContext(ctx, p, profile)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("privascope: analysing disclosure risk: %w", err)
	}
	return p, assessment, nil
}

// AssessPopulation assesses every profile against the (cached) privacy model
// of m and aggregates the results. Assessments share the engine's
// profile-shape cache, so repeated population scans — and interleaved
// single-user Assess calls — never re-analyse a shape the engine has seen.
func (e *Engine) AssessPopulation(ctx context.Context, m *Model, profiles []UserProfile) (*PopulationAssessment, error) {
	p, cacheable, err := e.model(ctx, m)
	if err != nil {
		return nil, err
	}
	cache := e.assessments
	if !cacheable {
		// A per-call cache still dedups shapes within this population but is
		// dropped with it, so uncacheable models cannot grow the engine.
		cache, err = risk.NewAssessmentCache(e.analyzer)
		if err != nil {
			return nil, err
		}
	}
	return risk.AnalyzePopulationCached(ctx, cache, p, profiles)
}

// Monitor creates a runtime privacy monitor backed by the engine's (cached)
// privacy model of m and the engine's analyzer.
func (e *Engine) Monitor(ctx context.Context, m *Model, cfg MonitorConfig) (*Monitor, error) {
	p, err := e.Model(ctx, m)
	if err != nil {
		return nil, err
	}
	if cfg.Analyzer == nil {
		cfg.Analyzer = e.analyzer
	}
	return NewMonitor(p, cfg)
}

// Generations returns how many LTS generations the engine has actually run —
// the instrumentation behind the generate-once guarantee: concurrent Assess
// calls on one model must leave this at 1.
func (e *Engine) Generations() int64 { return e.generations.Load() }

// Loads returns how many privacy models the engine has loaded from the
// persistent registry (EngineOptions.CacheDir) instead of generating: a warm
// registry makes a cold-started engine report Generations() == 0 and
// Loads() > 0. Always zero when no CacheDir was configured.
func (e *Engine) Loads() int64 { return e.loads.Load() }

// IncrementalHits returns how many generations an incremental engine served
// by replaying its previous exploration trace instead of exploring from
// scratch. Always zero when EngineOptions.Incremental is off.
func (e *Engine) IncrementalHits() int64 { return e.incremental.Load() }

// CachedModels returns the number of distinct model fingerprints currently
// cached (in-flight generations included).
func (e *Engine) CachedModels() int { return e.models.Size() }

// ModelCacheStats reports how many Model lookups were served from the cache
// versus generated.
func (e *Engine) ModelCacheStats() (hits, misses int64) {
	return e.models.Hits(), e.models.Misses()
}

// AssessmentCacheStats reports how many profile analyses were served from
// the shared profile-shape cache versus computed.
func (e *Engine) AssessmentCacheStats() (hits, misses int64) {
	return e.assessments.Hits(), e.assessments.Misses()
}

// ModelFingerprint returns the canonical content fingerprint the Engine keys
// its model cache by: the hex SHA-256 of the model's canonical JSON document
// plus an injective encoding of its access-control policy. Semantically
// different models never share a fingerprint; models with custom Policy
// implementations cannot be fingerprinted and return an error.
func ModelFingerprint(m *Model) (string, error) {
	return dataflow.Fingerprint(m)
}
