package privascope_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestGodocCompleteness is the documentation gate CI runs: every exported
// symbol of the public facade and the scaled analysis packages must carry a
// doc comment. The root privascope package — including the Engine and every
// ...Context entry point — is the documented surface external code builds
// against, and the anonymization/value-risk pipeline is the part external
// tooling scripts against, so an undocumented export in any of them is
// treated as a build break, not a style nit.
func TestGodocCompleteness(t *testing.T) {
	for _, dir := range []string{
		".", // the root privascope package: facade + Engine
		filepath.Join("internal", "anonymize"),
		filepath.Join("internal", "pseudorisk"),
	} {
		missing, err := undocumentedExports(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, m := range missing {
			t.Errorf("%s: %s is exported but has no doc comment", dir, m)
		}
	}
}

// undocumentedExports parses the package in dir (tests excluded) and returns
// a description of every exported top-level symbol without a doc comment. A
// grouped declaration's comment covers all of its specs, matching godoc's
// rendering.
func undocumentedExports(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	position := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedReceiver(d) && d.Doc == nil {
						missing = append(missing, fmt.Sprintf("func %s (%s)", d.Name.Name, position(d)))
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						for _, name := range specNames(spec) {
							if name.IsExported() && d.Doc == nil && specDoc(spec) == nil {
								missing = append(missing, fmt.Sprintf("%s %s (%s)", d.Tok, name.Name, position(spec)))
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (top-level functions count as exported receivers).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// specNames returns the named identifiers a declaration spec introduces.
func specNames(spec ast.Spec) []*ast.Ident {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		return []*ast.Ident{s.Name}
	case *ast.ValueSpec:
		return s.Names
	default:
		return nil
	}
}

// specDoc returns the spec-level doc comment, if any.
func specDoc(spec ast.Spec) *ast.CommentGroup {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		if s.Doc != nil {
			return s.Doc
		}
		return s.Comment
	case *ast.ValueSpec:
		if s.Doc != nil {
			return s.Doc
		}
		return s.Comment
	default:
		return nil
	}
}
