// Pseudonymisation: the paper's case study IV-B end to end (Table I and
// Fig. 4).
//
// The six sample records are 2-anonymised on age and height; the policy to
// check is that a researcher with access only to the anonymised dataset must
// not be able to predict an individual's weight to within 5 kg with at least
// 90 % confidence. The per-record value risks and violation counts of
// Table I are computed, the privacy LTS of the metrics-study model is
// annotated with risk transitions (Fig. 4), and the design-time threshold
// gate rejects the 2-anonymisation — prompting a comparison with stronger
// parameters on a larger synthetic dataset.
//
// Run with:
//
//	go run ./examples/pseudonymisation
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"privascope"
	"privascope/internal/anonymize"
	"privascope/internal/casestudy"
	"privascope/internal/pseudorisk"
	"privascope/internal/report"
	"privascope/internal/synth"
)

func main() {
	policy := casestudy.ResearchPolicy()
	records := casestudy.TableIRecords()

	fmt.Println("Policy:", policy.Description)
	fmt.Println()
	fmt.Println("2-anonymised records (Table I input):")
	fmt.Println(records.String())

	// ----- Table I: value risks as more quasi-identifiers become visible.
	evaluator, err := privascope.NewValueRiskEvaluator(records, policy)
	if err != nil {
		log.Fatal(err)
	}
	progression := [][]string{{"height"}, {"age"}, {"age", "height"}}
	results, err := evaluator.EvaluateProgression(progression)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I — risk values for the 2-anonymised records:")
	fmt.Println(report.TableI(evaluator, results).Render())

	// ----- Fig. 4: the same risks layered onto the privacy LTS.
	metricsLTS, err := privascope.GenerateWithOptions(casestudy.Metrics(), privascope.GenerateOptions{
		FlowOrdering:   privascope.OrderDataDriven,
		PotentialReads: privascope.PotentialReadsOff,
	})
	if err != nil {
		log.Fatal(err)
	}
	annotation, err := privascope.AnalyzePseudonymisation(metricsLTS, privascope.PseudonymisationOptions{
		Actor:  casestudy.ActorResearcher,
		Policy: policy,
		Table:  records,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.PseudonymisationAnnotation(annotation).Render())
	fmt.Printf("violation counts across at-risk states: %v (the paper's Fig. 4 shows 0, 2 and 4)\n\n",
		annotation.ViolationCounts())
	if err := os.WriteFile("fig4_pseudonymisation_lts.dot", []byte(annotation.DOT("fig4")), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote fig4_pseudonymisation_lts.dot (dotted edges are the risk transitions)")

	// ----- Design-time gate: more than 50% violations is unacceptable.
	if err := annotation.CheckThreshold(0.5); err != nil {
		if errors.Is(err, pseudorisk.ErrThresholdExceeded) {
			fmt.Println("\ndesign-time gate rejected the 2-anonymisation:")
			fmt.Println("  ", err)
		} else {
			log.Fatal(err)
		}
	}

	// ----- What would a stronger pseudonymisation look like? k-anonymise a
	// larger synthetic dataset with k = 2 and k = 10 and compare risk and
	// utility.
	fmt.Println("\nComparing k = 2 and k = 10 on a 200-record synthetic dataset:")
	data := synth.HealthRecords(synth.HealthRecordsOptions{Rows: 200, Seed: 42})
	comparison := report.NewTable("k", "violations (age+height visible)", "max risk", "generalisation loss", "weight mean shift")
	for _, k := range []int{2, 10} {
		anonymised, _, err := anonymize.KAnonymize(data, []string{"age", "height"}, k, anonymize.KAnonymizeOptions{
			InitialWidths: map[string]float64{"age": 5, "height": 5},
		})
		if err != nil {
			log.Fatal(err)
		}
		eval, err := pseudorisk.NewEvaluator(anonymised, policy)
		if err != nil {
			log.Fatal(err)
		}
		scenario, err := eval.Evaluate([]string{"age", "height"})
		if err != nil {
			log.Fatal(err)
		}
		loss, err := anonymize.GeneralizationLoss(data, anonymised, []string{"age", "height"})
		if err != nil {
			log.Fatal(err)
		}
		utility, err := anonymize.CompareUtility(data, anonymised, []string{"weight"})
		if err != nil {
			log.Fatal(err)
		}
		weightUtility, _ := utility.Column("weight")
		comparison.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d/%d", scenario.Violations, anonymised.NumRows()),
			fmt.Sprintf("%.2f", scenario.MaxRisk),
			fmt.Sprintf("%.3f", loss),
			fmt.Sprintf("%.2f", weightUtility.MeanShift()),
		)
	}
	fmt.Println(comparison.Render())
	fmt.Println("Raising k lowers the value risk at the cost of generalisation loss — the trade-off the")
	fmt.Println("paper's risk-versus-utility discussion asks designers to make explicit.")
}
