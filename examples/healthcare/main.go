// Healthcare: the paper's case study IV-A end to end.
//
// The doctors'-surgery system of Fig. 1 (Medical Service + Medical Research
// Service) is modelled, the privacy LTS of Figs. 2/3 is generated, and the
// unwanted-disclosure risk for a patient who consented only to the Medical
// Service and is highly sensitive about their diagnosis is analysed. The
// administrator's maintenance read access to the EHR surfaces as a Medium
// risk; after the access-policy mitigation the risk drops, reproducing the
// paper's narrative.
//
// Run with:
//
//	go run ./examples/healthcare
//
// The data-flow diagram (Fig. 1) and the Medical-Service LTS (Fig. 3) are
// written as DOT files into the working directory.
package main

import (
	"fmt"
	"log"
	"os"

	"privascope"
	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/report"
)

func main() {
	model := casestudy.Surgery()
	profile := casestudy.PatientProfile()

	fmt.Printf("System: %s (%d actors, %d datastores, %d services)\n",
		model.Name, len(model.Actors), len(model.Datastores), len(model.Services))
	fmt.Printf("User %q consents to: %v; most sensitive field: %s\n\n",
		profile.ID, profile.ConsentedServices, casestudy.FieldDiagnosis)

	// Fig. 1: the data-flow diagrams.
	if err := os.WriteFile("fig1_dataflow.dot", []byte(model.DOT()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote fig1_dataflow.dot (render with: dot -Tpng fig1_dataflow.dot)")

	// Figs. 2/3: the generated privacy LTS.
	generated, err := privascope.Generate(model)
	if err != nil {
		log.Fatal(err)
	}
	stats := generated.Stats()
	fmt.Printf("generated privacy LTS: %d states, %d transitions, %d state variables per state\n",
		stats.States, stats.Transitions, stats.StateVariables)

	medicalOnly := medicalServiceLTS()
	if err := os.WriteFile("fig3_medical_lts.dot",
		[]byte(medicalOnly.DOT(core.DOTOptions{Name: "fig3_medical_service"})), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote fig3_medical_lts.dot (the Medical Service process as an LTS)")

	// Case study IV-A: analyse the original policy, then the mitigation.
	before, err := privascope.AnalyzeDisclosure(generated, profile, privascope.RiskConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(report.DisclosureAssessment(before).Render())

	mitigatedModel := casestudy.SurgeryWithPolicy(casestudy.MitigatedSurgeryACL())
	mitigatedLTS, err := privascope.Generate(mitigatedModel)
	if err != nil {
		log.Fatal(err)
	}
	after, err := privascope.AnalyzeDisclosure(mitigatedLTS, profile, privascope.RiskConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Mitigation: restrict the administrator's EHR access to the name field.")
	fmt.Printf("Administrator risk: %s -> %s\n",
		before.MaxRiskFor(casestudy.ActorAdministrator), after.MaxRiskFor(casestudy.ActorAdministrator))
	changes := privascope.CompareAssessments(before, after)
	fmt.Println()
	fmt.Println(report.RiskComparison(changes).Render())
}

// medicalServiceLTS generates the LTS of the Medical Service process alone,
// matching the scope of the paper's Fig. 3.
func medicalServiceLTS() *privascope.PrivacyModel {
	model := casestudy.Surgery()
	var medicalFlows []privascope.Flow
	for _, f := range model.Flows {
		if f.Service == casestudy.ServiceMedical {
			medicalFlows = append(medicalFlows, f)
		}
	}
	model.Flows = medicalFlows
	model.Services = []privascope.Service{{ID: casestudy.ServiceMedical, Name: "Medical Service"}}
	generated, err := privascope.GenerateWithOptions(model, privascope.GenerateOptions{
		PotentialReads: privascope.PotentialReadsTerminal,
	})
	if err != nil {
		log.Fatal(err)
	}
	return generated
}
