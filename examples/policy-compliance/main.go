// Policy compliance: check the modelled behaviour of the doctors' surgery
// against the privacy policies its services state to users.
//
// A baseline policy is derived from the declared flows (the system does what
// it says), then two problems are introduced to show what the checker
// reports: a service with no stated policy at all, and a statement whose
// purpose no longer matches the flow that uses the data. Finally the checker
// is run with potential reads included, which flags the administrator's
// maintenance access as behaviour the stated policies never mention.
//
// Run with:
//
//	go run ./examples/policy-compliance
package main

import (
	"fmt"
	"log"

	"privascope"
	"privascope/internal/casestudy"
	"privascope/internal/policy"
	"privascope/internal/report"
)

func main() {
	generated, err := privascope.Generate(casestudy.Surgery())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Derive policies that exactly cover today's behaviour and verify the
	//    model against them.
	medical := privascope.DerivePolicy(generated, casestudy.ServiceMedical)
	research := privascope.DerivePolicy(generated, casestudy.ServiceResearch)
	fmt.Printf("derived %d statements for the Medical Service and %d for the Research Service\n\n",
		len(medical.Statements), len(research.Statements))

	compliant, err := privascope.CheckCompliance(generated, medical, research)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1) behaviour vs derived policies:")
	fmt.Println(report.Compliance(compliant).Render())

	// 2. Forget to publish a policy for the research service.
	missing, err := privascope.CheckCompliance(generated, medical)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2) research service has no stated policy:")
	fmt.Println(report.Compliance(missing).Render())

	// 3. The nurse's read is re-purposed in the stated policy, so the actual
	//    flow no longer matches what users were told.
	repurposed := medical
	repurposed.Statements = append([]privascope.PolicyStatement(nil), medical.Statements...)
	for i, statement := range repurposed.Statements {
		if statement.Actor == casestudy.ActorNurse {
			repurposed.Statements[i].Purposes = []string{"billing"}
		}
	}
	mismatch, err := privascope.CheckCompliance(generated, repurposed, research)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3) stated purpose no longer matches the flow:")
	fmt.Println(report.Compliance(mismatch).Render())

	// 4. Include the policy-permitted reads that no flow performs: the
	//    administrator's maintenance access is behaviour the stated policies
	//    never told the user about.
	set, err := policy.NewPolicySet(medical, research)
	if err != nil {
		log.Fatal(err)
	}
	checker := policy.NewChecker(set)
	checker.IncludePotential = true
	withPotential, err := checker.Check(generated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4) including policy-permitted reads outside the declared flows:")
	fmt.Println(report.Compliance(withPotential).Render())
}
