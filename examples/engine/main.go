// Engine: the generate-once/analyse-many session API. One long-lived
// privascope.Engine serves concurrent assessment requests: the privacy LTS
// is generated exactly once per model (cached by content fingerprint, even
// across independently-built copies of the model), risk analyses are shared
// across same-shaped user profiles, and every call takes a context so a
// server can attach deadlines or cancel on shutdown.
//
// Run with:
//
//	go run ./examples/engine
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"

	"privascope"
)

func main() {
	// The root context: Ctrl-C cancels any in-flight generation or analysis
	// cleanly instead of killing the process mid-work.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	engine, err := privascope.NewEngine(privascope.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Serve 100 concurrent assessment "requests". Each request builds its
	// own copy of the model — as a server decoding the same model document
	// per request would — yet the engine runs one single generation: the
	// cache is keyed by content fingerprint, and concurrent first requests
	// block on the one in-flight generation instead of duplicating it.
	const requests = 100
	var wg sync.WaitGroup
	risks := make([]privascope.RiskLevel, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model, err := buildClinicModel()
			if err != nil {
				log.Fatal(err)
			}
			profile := privascope.UserProfile{
				ID:                 fmt.Sprintf("user-%03d", i),
				ConsentedServices:  []string{"care"},
				Sensitivities:      map[string]float64{"diagnosis": privascope.SensitivityHigh},
				DefaultSensitivity: 0.1,
			}
			result, err := engine.Assess(ctx, model, profile)
			if err != nil {
				log.Fatal(err)
			}
			risks[i] = result.Assessment.OverallRisk
		}(i)
	}
	wg.Wait()

	fmt.Printf("assessed %d users; overall risk of the first: %s\n", requests, risks[0])
	fmt.Printf("LTS generations actually run: %d (one model, one generation)\n", engine.Generations())
	modelHits, modelMisses := engine.ModelCacheStats()
	fmt.Printf("model cache: %d hits / %d misses\n", modelHits, modelMisses)
	assessHits, assessMisses := engine.AssessmentCacheStats()
	fmt.Printf("assessment cache: %d hits / %d misses (all %d users share one profile shape)\n",
		assessHits, assessMisses, requests)

	// The same engine powers population scans and runtime monitors against
	// the cached model; neither triggers another generation.
	model, err := buildClinicModel()
	if err != nil {
		log.Fatal(err)
	}
	profiles := make([]privascope.UserProfile, 50)
	for i := range profiles {
		profiles[i] = privascope.UserProfile{
			ID: fmt.Sprintf("sim-%03d", i), ConsentedServices: []string{"care"}, DefaultSensitivity: 0.5,
		}
	}
	population, err := engine.AssessPopulation(ctx, model, profiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %d users, %d at risk, %d distinct shapes analysed\n",
		len(population.Users), population.UsersAtRisk, population.DistinctShapes)
	fmt.Printf("LTS generations after population scan: %d\n", engine.Generations())
}

// buildClinicModel assembles the quickstart clinic model; see
// examples/quickstart for the annotated walkthrough.
func buildClinicModel() (*privascope.Model, error) {
	acl, err := privascope.NewACL(
		privascope.Grant{
			Actor: "doctor", Datastore: "ehr",
			Fields:      []string{privascope.AllFields},
			Permissions: []privascope.Permission{privascope.PermissionRead, privascope.PermissionWrite},
			Reason:      "clinical care",
		},
		privascope.Grant{
			Actor: "it_admin", Datastore: "ehr",
			Fields:      []string{privascope.AllFields},
			Permissions: []privascope.Permission{privascope.PermissionRead},
			Reason:      "system maintenance",
		},
	)
	if err != nil {
		return nil, err
	}
	builder := privascope.NewModelBuilder("engine-clinic",
		privascope.Actor{ID: "patient", Name: "Patient"})
	builder.AddActors(
		privascope.Actor{ID: "doctor", Name: "Doctor"},
		privascope.Actor{ID: "it_admin", Name: "IT Administrator"},
	)
	builder.AddDatastore(privascope.Datastore{
		ID: "ehr", Name: "Electronic Health Record",
		Schema: privascope.Schema{Name: "ehr", Fields: []privascope.Field{
			{Name: "name", Category: privascope.CategoryIdentifier},
			{Name: "diagnosis", Category: privascope.CategorySensitive},
		}},
	})
	builder.AddService(privascope.Service{ID: "care", Name: "Care Service",
		Purpose: "diagnose and treat the patient"})
	builder.Flow("care", "patient", "doctor", []string{"name", "diagnosis"}, "consultation")
	builder.Flow("care", "doctor", "ehr", []string{"name", "diagnosis"}, "record consultation")
	builder.WithPolicy(acl)
	return builder.Build()
}
