// Runtime monitoring: run the doctors'-surgery model as live HTTP datastore
// services and monitor a patient's privacy against the generated model.
//
// The medical service is executed over HTTP (receptionist books the
// appointment, doctor records the consultation, nurse reads the treatment);
// none of this raises alerts because the patient consented to the Medical
// Service. Then the administrator browses the EHR — a policy-permitted read
// that no declared flow performs — and the monitor raises the Medium-risk
// alert of case study IV-A, this time observed at runtime rather than
// predicted at design time.
//
// Run with:
//
//	go run ./examples/runtime-monitor
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"privascope"
	"privascope/internal/casestudy"
)

func main() {
	model := casestudy.Surgery()
	profile := casestudy.PatientProfile()

	generated, err := privascope.Generate(model)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := privascope.NewMonitor(generated, privascope.MonitorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := monitor.RegisterUser(profile); err != nil {
		log.Fatal(err)
	}

	cluster, err := privascope.StartCluster(model)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = cluster.Stop(ctx)
	}()

	for _, id := range []string{casestudy.StoreAppointments, casestudy.StoreEHR, casestudy.StoreAnonEHR} {
		url, err := cluster.URL(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("datastore %-14s -> %s\n", id, url)
	}

	events, cancelSub := cluster.Log().Subscribe(256)
	defer cancelSub()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			if ev.UserID != profile.ID {
				continue
			}
			obs, err := monitor.Observe(ev)
			if err != nil {
				continue
			}
			fmt.Printf("observed %-8s by %-13s on %-12s -> privacy state %s\n",
				ev.Action, ev.Actor, ev.Datastore, obs.To)
			for _, alert := range obs.Alerts {
				fmt.Printf("  ALERT [%s] %s\n", alert.Kind, alert.Message)
			}
		}
	}()

	ctx := context.Background()
	userID := profile.ID

	// The parts of the medical service that are person-to-person (collect
	// actions) are reported to the monitor directly; the datastore
	// operations run over HTTP and reach the monitor through the event log.
	mustObserve(monitor, privascope.Event{Actor: casestudy.ActorReceptionist, Action: privascope.ActionCollect,
		UserID: userID, Fields: []string{casestudy.FieldName, casestudy.FieldDateOfBirth}})

	receptionist := mustClient(cluster, casestudy.StoreAppointments, casestudy.ActorReceptionist)
	mustDo(receptionist.Put(ctx, userID, "schedule appointment", map[string]string{
		casestudy.FieldName:        "Pat Example",
		casestudy.FieldDateOfBirth: "1990-01-01",
		casestudy.FieldAppointment: "2026-06-22 10:30",
	}))

	doctorAppointments := mustClient(cluster, casestudy.StoreAppointments, casestudy.ActorDoctor)
	_, err = doctorAppointments.Get(ctx, userID, "prepare consultation", nil)
	mustDo(err)

	mustObserve(monitor, privascope.Event{Actor: casestudy.ActorDoctor, Action: privascope.ActionCollect,
		UserID: userID, Fields: []string{casestudy.FieldMedicalIssues}})

	doctorEHR := mustClient(cluster, casestudy.StoreEHR, casestudy.ActorDoctor)
	mustDo(doctorEHR.Put(ctx, userID, "record consultation", map[string]string{
		casestudy.FieldName:          "Pat Example",
		casestudy.FieldDateOfBirth:   "1990-01-01",
		casestudy.FieldMedicalIssues: "persistent cough",
		casestudy.FieldDiagnosis:     "bronchitis",
		casestudy.FieldTreatment:     "rest and fluids",
	}))

	nurse := mustClient(cluster, casestudy.StoreEHR, casestudy.ActorNurse)
	_, err = nurse.Get(ctx, userID, "administer treatment",
		[]string{casestudy.FieldName, casestudy.FieldTreatment})
	mustDo(err)

	// Now the administrator browses the EHR outside any service flow.
	admin := mustClient(cluster, casestudy.StoreEHR, casestudy.ActorAdministrator)
	_, err = admin.Get(ctx, userID, "maintenance", []string{casestudy.FieldDiagnosis})
	mustDo(err)

	// Give the monitor goroutine a moment to drain the event stream, then
	// close the subscription.
	time.Sleep(200 * time.Millisecond)
	cancelSub()
	<-done

	fmt.Println()
	alerts := monitor.AlertsFor(userID)
	fmt.Printf("monitoring summary: %d alert(s) for user %q\n", len(alerts), userID)
	for _, alert := range alerts {
		fmt.Printf("  [%s] risk=%s actor=%s fields=%v\n", alert.Kind, alert.Risk, alert.Event.Actor, alert.Event.Fields)
	}
	if vec, ok := monitor.CurrentVector(userID); ok {
		fmt.Printf("final privacy state has %d true state variables\n", vec.CountTrue())
	}
}

func mustClient(cluster *privascope.Cluster, datastore, actor string) *privascope.DatastoreClient {
	client, err := cluster.Client(datastore, actor)
	if err != nil {
		log.Fatal(err)
	}
	return client
}

func mustObserve(monitor *privascope.Monitor, ev privascope.Event) {
	if _, err := monitor.Observe(ev); err != nil {
		log.Fatal(err)
	}
}

func mustDo(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
