// Quickstart: model a tiny data service, generate its formal privacy model,
// and identify the unwanted-disclosure risks for one user.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privascope"
)

func main() {
	// 1. Describe the system as a data-flow model: who handles which
	//    personal data, where it is stored, and who may access the stores.
	acl, err := privascope.NewACL(
		privascope.Grant{
			Actor: "doctor", Datastore: "ehr",
			Fields:      []string{privascope.AllFields},
			Permissions: []privascope.Permission{privascope.PermissionRead, privascope.PermissionWrite},
			Reason:      "clinical care",
		},
		privascope.Grant{
			Actor: "it_admin", Datastore: "ehr",
			Fields:      []string{privascope.AllFields},
			Permissions: []privascope.Permission{privascope.PermissionRead},
			Reason:      "system maintenance",
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	builder := privascope.NewModelBuilder("quickstart-clinic",
		privascope.Actor{ID: "patient", Name: "Patient"})
	builder.AddActors(
		privascope.Actor{ID: "doctor", Name: "Doctor"},
		privascope.Actor{ID: "it_admin", Name: "IT Administrator"},
	)
	builder.AddDatastore(privascope.Datastore{
		ID: "ehr", Name: "Electronic Health Record",
		Schema: privascope.Schema{Name: "ehr", Fields: []privascope.Field{
			{Name: "name", Category: privascope.CategoryIdentifier},
			{Name: "diagnosis", Category: privascope.CategorySensitive},
		}},
	})
	builder.AddService(privascope.Service{ID: "care", Name: "Care Service",
		Purpose: "diagnose and treat the patient"})
	builder.Flow("care", "patient", "doctor", []string{"name", "diagnosis"}, "consultation")
	builder.Flow("care", "doctor", "ehr", []string{"name", "diagnosis"}, "record consultation")
	builder.WithPolicy(acl)

	model, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the user: which services they agreed to and how sensitive
	//    each field is to them.
	patient := privascope.UserProfile{
		ID:                 "alice",
		ConsentedServices:  []string{"care"},
		Sensitivities:      map[string]float64{"diagnosis": privascope.SensitivityHigh},
		DefaultSensitivity: 0.1,
	}

	// 3. Run the pipeline: generate the privacy LTS and analyse the risk of
	//    unwanted disclosure.
	result, err := privascope.Assess(model, patient, privascope.AssessOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(result.Report.Render())
	fmt.Printf("Overall risk for %s: %s\n", patient.ID, result.Assessment.OverallRisk)
	for _, finding := range result.Assessment.FindingsAtLeast(privascope.RiskMedium) {
		fmt.Printf("  -> %s\n     mitigation: %s\n", finding.Explanation, finding.Mitigation)
	}
}
