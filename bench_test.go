// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus scaling sweeps for the extension experiments recorded in
// EXPERIMENTS.md.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks assert the headline numbers (violation counts, risk levels)
// inside the timed loop is avoided; correctness is asserted once before the
// loop so a regression fails the benchmark rather than silently timing wrong
// results.
package privascope_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"privascope"
	"privascope/internal/anonymize"
	"privascope/internal/casestudy"
	"privascope/internal/cluster"
	"privascope/internal/core"
	"privascope/internal/pseudorisk"
	"privascope/internal/risk"
	"privascope/internal/service"
	"privascope/internal/synth"
)

// BenchmarkFig1DataflowModel measures building the doctors'-surgery data-flow
// model of Fig. 1 and rendering its diagrams to DOT.
func BenchmarkFig1DataflowModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		model := casestudy.Surgery()
		if model.DOT() == "" {
			b.Fatal("empty DOT output")
		}
	}
}

// BenchmarkFig2StateVariables measures the privacy state-vector operations of
// Fig. 2: a vocabulary of 5 actors and 6 fields (60 Boolean state variables)
// with sets, gets and change extraction.
func BenchmarkFig2StateVariables(b *testing.B) {
	vocab := core.NewVocabulary(
		[]string{"receptionist", "doctor", "nurse", "administrator", "researcher"},
		[]string{"name", "date_of_birth", "appointment", "medical_issues", "diagnosis", "treatment"},
	)
	if vocab.NumVariables() != 60 {
		b.Fatalf("state variables = %d, want 60", vocab.NumVariables())
	}
	actors := vocab.Actors()
	fields := vocab.Fields()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec := vocab.NewVector()
		prev := vec.Clone()
		for _, actor := range actors {
			for _, field := range fields {
				vec.Set(actor, field, core.HasIdentified)
				vec.Set(actor, field, core.CouldIdentify)
			}
		}
		if vec.CountTrue() != 60 {
			b.Fatal("unexpected count")
		}
		if len(vec.NewlyTrue(prev)) != 60 {
			b.Fatal("unexpected change size")
		}
	}
}

// BenchmarkFig3MedicalServiceLTS measures generating the privacy LTS of the
// full doctors'-surgery model (the Medical Service LTS of Fig. 3 plus the
// research service and the policy-permitted potential reads).
func BenchmarkFig3MedicalServiceLTS(b *testing.B) {
	model := casestudy.Surgery()
	p, err := privascope.Generate(model)
	if err != nil {
		b.Fatal(err)
	}
	if p.Stats().States == 0 {
		b.Fatal("empty LTS")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privascope.Generate(model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaseStudyADisclosureRisk measures the full case-study IV-A
// pipeline: generate the LTS, assess the patient profile, apply the
// mitigation, and compare.
func BenchmarkCaseStudyADisclosureRisk(b *testing.B) {
	original := casestudy.Surgery()
	mitigated := casestudy.SurgeryWithPolicy(casestudy.MitigatedSurgeryACL())
	profile := casestudy.PatientProfile()

	// Correctness gate: medium before, at most low after.
	before, err := privascope.Assess(original, profile, privascope.AssessOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if before.Assessment.MaxRiskFor(casestudy.ActorAdministrator) != risk.LevelMedium {
		b.Fatalf("before risk = %v, want medium", before.Assessment.MaxRiskFor(casestudy.ActorAdministrator))
	}
	after, err := privascope.Assess(mitigated, profile, privascope.AssessOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if after.Assessment.MaxRiskFor(casestudy.ActorAdministrator) > risk.LevelLow {
		b.Fatalf("after risk = %v, want at most low", after.Assessment.MaxRiskFor(casestudy.ActorAdministrator))
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		beforeResult, err := privascope.Assess(original, profile, privascope.AssessOptions{})
		if err != nil {
			b.Fatal(err)
		}
		afterResult, err := privascope.Assess(mitigated, profile, privascope.AssessOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(privascope.CompareAssessments(beforeResult.Assessment, afterResult.Assessment)) == 0 {
			b.Fatal("no risk changes reported")
		}
	}
}

// BenchmarkTable1ValueRisk measures reproducing Table I: the per-record value
// risks and violation counts of the six 2-anonymised records under the
// height / age / age+height visibility progression.
func BenchmarkTable1ValueRisk(b *testing.B) {
	evaluator, err := privascope.NewValueRiskEvaluator(casestudy.TableIRecords(), casestudy.ResearchPolicy())
	if err != nil {
		b.Fatal(err)
	}
	progression := [][]string{{"height"}, {"age"}, {"age", "height"}}
	results, err := evaluator.EvaluateProgression(progression)
	if err != nil {
		b.Fatal(err)
	}
	if results[0].Violations != 0 || results[1].Violations != 2 || results[2].Violations != 4 {
		b.Fatalf("violations = %d/%d/%d, want 0/2/4",
			results[0].Violations, results[1].Violations, results[2].Violations)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evaluator.EvaluateProgression(progression); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4PseudonymisationLTS measures layering the Table I value risks
// onto the metrics-study privacy LTS (the dotted risk transitions of Fig. 4).
func BenchmarkFig4PseudonymisationLTS(b *testing.B) {
	p, err := privascope.GenerateWithOptions(casestudy.Metrics(), privascope.GenerateOptions{
		FlowOrdering:   privascope.OrderDataDriven,
		PotentialReads: privascope.PotentialReadsOff,
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := privascope.PseudonymisationOptions{
		Actor:  casestudy.ActorResearcher,
		Policy: casestudy.ResearchPolicy(),
		Table:  casestudy.TableIRecords(),
	}
	annotation, err := privascope.AnalyzePseudonymisation(p, opts)
	if err != nil {
		b.Fatal(err)
	}
	if annotation.MaxViolations() != 4 {
		b.Fatalf("max violations = %d, want 4", annotation.MaxViolations())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privascope.AnalyzePseudonymisation(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUtilityMetrics measures the utility comparison of Section III-B
// (means, variances, generalisation loss) between a raw synthetic dataset and
// its 5-anonymised form.
func BenchmarkUtilityMetrics(b *testing.B) {
	raw := synth.HealthRecords(synth.HealthRecordsOptions{Rows: 500, Seed: 9})
	anonymised, _, err := anonymize.KAnonymize(raw, []string{"age", "height"}, 5, anonymize.KAnonymizeOptions{
		InitialWidths: map[string]float64{"age": 5, "height": 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := anonymize.CompareUtility(raw, anonymised, []string{"weight", "height", "age"}); err != nil {
			b.Fatal(err)
		}
		if _, err := anonymize.GeneralizationLoss(raw, anonymised, []string{"age", "height"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLTSGenerationScaling sweeps the size of synthetic models (the
// state-space growth argument of Section II-B): more services and fields mean
// more state variables and more interleavings. The largest model is
// additionally swept over worker counts, so one run shows both how the state
// space grows and how the parallel engine absorbs it.
func BenchmarkLTSGenerationScaling(b *testing.B) {
	for _, services := range []int{1, 2, 3, 4} {
		spec := synth.ModelSpec{Services: services, FieldsPerService: 3}
		model := synth.Model(spec)
		stats := model.Stats()
		b.Run(fmt.Sprintf("services=%d/vars=%d", services, stats.StateVariables), func(b *testing.B) {
			p, err := privascope.Generate(model)
			if err != nil {
				b.Fatal(err)
			}
			states := p.Stats().States
			b.ReportMetric(float64(states), "states")
			b.ReportMetric(float64(p.Stats().Transitions), "transitions")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := privascope.Generate(model); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportStatesPerSec(b, states)
		})
	}
	largest := synth.Model(synth.ModelSpec{Services: 4, FieldsPerService: 3})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("services=4/workers=%d", workers), func(b *testing.B) {
			benchGenerate(b, largest, privascope.GenerateOptions{Workers: workers})
		})
	}
}

// BenchmarkLTSGenerationParallel sweeps the worker count of the parallel
// exploration engine on a large synthetic model (5 services, 15625 states).
// On multi-core hardware the per-worker sub-benchmarks show the speedup of
// sharded frontier expansion; the generated LTS is byte-identical across all
// of them (see TestParallelGenerationIdenticalDigests).
func BenchmarkLTSGenerationParallel(b *testing.B) {
	model := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchGenerate(b, model, privascope.GenerateOptions{Workers: workers})
		})
	}
}

// benchGenerate times repeated generation of one model under fixed options
// and reports throughput in explored states per second.
func benchGenerate(b *testing.B, model *privascope.Model, opts privascope.GenerateOptions) {
	b.Helper()
	p, err := privascope.GenerateWithOptions(model, opts)
	if err != nil {
		b.Fatal(err)
	}
	states := p.Stats().States
	b.ReportMetric(float64(states), "states")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privascope.GenerateWithOptions(model, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportStatesPerSec(b, states)
}

// reportStatesPerSec reports generation throughput: states explored per
// second of wall time across all iterations.
func reportStatesPerSec(b *testing.B, statesPerRun int) {
	if seconds := b.Elapsed().Seconds(); seconds > 0 {
		b.ReportMetric(float64(statesPerRun)*float64(b.N)/seconds, "states/sec")
	}
}

// BenchmarkEngineAssessCached contrasts the two assessment paths of the
// public API: "cold" builds a fresh Engine per iteration, so every Assess
// pays fingerprinting + LTS generation + risk analysis + report (the same
// work the context-free Assess pipeline does per call); "cached" reuses one
// warm Engine, so Assess pays fingerprinting + two cache hits + report —
// the per-request cost of a long-lived server session. The gap between the
// two sub-benchmarks is the generate-once/analyse-many win.
func BenchmarkEngineAssessCached(b *testing.B) {
	model := casestudy.Surgery()
	profile := casestudy.PatientProfile()
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine := privascope.MustEngine(privascope.EngineOptions{})
			if _, err := engine.Assess(ctx, model, profile); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		engine := privascope.MustEngine(privascope.EngineOptions{})
		warm, err := engine.Assess(ctx, model, profile)
		if err != nil {
			b.Fatal(err)
		}
		if warm.Assessment.OverallRisk == privascope.RiskNone {
			b.Fatal("warm-up assessment found no risk; the benchmark would time a degenerate path")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Assess(ctx, model, profile); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := engine.Generations(); got != 1 {
			b.Fatalf("cached benchmark ran %d generations, want 1", got)
		}
	})
}

// BenchmarkRiskAnalysisScaling sweeps the number of simulated users assessed
// against one generated model — the per-user analysis the paper proposes to
// run "with running users of the system, or with simulated users".
func BenchmarkRiskAnalysisScaling(b *testing.B) {
	model := synth.Model(synth.ModelSpec{Services: 3, FieldsPerService: 3})
	p, err := privascope.Generate(model)
	if err != nil {
		b.Fatal(err)
	}
	for _, users := range []int{1, 10, 100} {
		profiles := synth.Population(model, synth.PopulationOptions{
			Users: users, Seed: 21, SensitiveFields: synth.SensitiveFieldsOf(model),
		})
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			analyzer, err := risk.NewAnalyzer(risk.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, profile := range profiles {
					if _, err := analyzer.Analyze(p, profile); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkKAnonymizeScaling sweeps dataset size for the k-anonymiser and the
// value-risk computation used by the pseudonymisation analysis.
func BenchmarkKAnonymizeScaling(b *testing.B) {
	for _, rows := range []int{100, 1000, 5000} {
		raw := synth.HealthRecords(synth.HealthRecordsOptions{Rows: rows, Seed: 3})
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				anonymised, _, err := anonymize.KAnonymize(raw, []string{"age", "height"}, 5, anonymize.KAnonymizeOptions{
					InitialWidths: map[string]float64{"age": 5, "height": 5},
				})
				if err != nil {
					b.Fatal(err)
				}
				evaluator, err := pseudorisk.NewEvaluator(anonymised, casestudy.ResearchPolicy())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := evaluator.Evaluate([]string{"age", "height"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitorThroughput measures sustained monitor ingestion: GOMAXPROCS
// goroutines each replay the medical-service run for their own user,
// re-registering (an O(1) cache hit) when the script ends. The shards=1
// sub-benchmark serializes every Observe behind a single lock — the old
// monitor design — so the higher shard counts show how lock striping scales
// events/sec with available cores.
func BenchmarkMonitorThroughput(b *testing.B) {
	p, err := privascope.Generate(casestudy.Surgery())
	if err != nil {
		b.Fatal(err)
	}
	baseProfile := casestudy.PatientProfile()
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			monitor, err := privascope.NewMonitor(p, privascope.MonitorConfig{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			var nextUser atomic.Int64
			register := func(userID string) {
				profile := baseProfile
				profile.ID = userID
				if err := monitor.RegisterUser(profile); err != nil {
					panic(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				userID := fmt.Sprintf("user-%d", nextUser.Add(1))
				register(userID)
				// One consented medical-service run: six events that each
				// match a declared transition without raising alerts — the
				// monitor's hot path.
				script := casestudy.MedicalServiceEvents(userID)
				pos := 0
				for pb.Next() {
					if pos == len(script) {
						register(userID) // reset the cursor; O(1) via the profile cache
						pos = 0
					}
					obs, err := monitor.Observe(script[pos])
					if err != nil {
						panic(err)
					}
					if !obs.Matched {
						panic("consented medical-service event did not match")
					}
					pos++
				}
			})
			b.StopTimer()
			if seconds := b.Elapsed().Seconds(); seconds > 0 {
				b.ReportMetric(float64(b.N)/seconds, "events/sec")
			}
		})
	}
}

// BenchmarkRuntimeMonitorObserve measures the per-event cost of the runtime
// monitor: matching an event against the current state's transitions and
// looking up the pre-computed risk.
func BenchmarkRuntimeMonitorObserve(b *testing.B) {
	p, err := privascope.Generate(casestudy.Surgery())
	if err != nil {
		b.Fatal(err)
	}
	monitor, err := privascope.NewMonitor(p, privascope.MonitorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	profile := casestudy.PatientProfile()
	if err := monitor.RegisterUser(profile); err != nil {
		b.Fatal(err)
	}
	ev := privascope.Event{
		Actor:  casestudy.ActorReceptionist,
		Action: privascope.ActionCollect,
		UserID: profile.ID,
		Fields: []string{casestudy.FieldName, casestudy.FieldDateOfBirth},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := monitor.Observe(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValueRiskPipeline measures the scaled anonrisk pipeline end to
// end on a large synthetic dataset: stream the CSV into a column-oriented
// table with interned cells, then score a four-scenario visibility
// progression plus the re-identification attacker models through a shared
// equivalence-class index. The ingest sub-benchmark reports CSV rows/sec;
// the score sub-benchmarks sweep the worker count (each iteration builds a
// fresh evaluator so class building and scoring are measured, not the
// cache) and report scored rows/sec — rows × scenarios per run. The output
// is byte-identical for every worker count; workers only buy throughput.
func BenchmarkValueRiskPipeline(b *testing.B) {
	const rows = 100_000
	var csvData bytes.Buffer
	cities := []string{"berlin", "paris", "london", "madrid", "rome", "vienna"}
	rng := rand.New(rand.NewSource(11))
	csvData.WriteString("age,height,city,weight\n")
	for i := 0; i < rows; i++ {
		lo := 150 + 10*rng.Intn(4)
		fmt.Fprintf(&csvData, "%d,%d-%d,%s,%d\n",
			20+10*rng.Intn(6), lo, lo+10, cities[rng.Intn(len(cities))], 45+rng.Intn(90))
	}
	raw := csvData.Bytes()

	b.Run("ingest", func(b *testing.B) {
		b.ReportAllocs()
		var rowsRead int
		for i := 0; i < b.N; i++ {
			table, err := anonymize.ReadCSV(bytes.NewReader(raw), nil)
			if err != nil {
				b.Fatal(err)
			}
			rowsRead += table.NumRows()
		}
		b.ReportMetric(float64(rowsRead)/b.Elapsed().Seconds(), "rows/sec")
	})

	table, err := anonymize.ReadCSV(bytes.NewReader(raw), nil)
	if err != nil {
		b.Fatal(err)
	}
	policy := pseudorisk.Policy{TargetField: "weight", Closeness: 5, Confidence: 0.9}
	progression := [][]string{{"age"}, {"height"}, {"city"}, {"age", "height", "city"}}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("score/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evaluator, err := pseudorisk.NewEvaluatorWithOptions(table, policy,
					pseudorisk.EvaluatorOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				results, err := evaluator.EvaluateProgression(progression)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(progression) {
					b.Fatalf("got %d results", len(results))
				}
				if _, err := anonymize.ReidentificationRiskIndexed(
					evaluator.Index(), []string{"age", "height", "city"}, 0.2); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows*len(progression)*b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// BenchmarkClusterIngest measures the cluster ingest plane end to end on the
// server side: pre-encoded binary event frames POSTed into each node's
// /ingest handler, decoded, admitted through the bounded queue and applied
// to the node's monitor by its drain worker. Users are partitioned over the
// consistent-hash ring exactly as the Router would route them; each
// generation replays every user's consented medical-service run once, with
// the untimed gaps re-registering users to reset their cursors (the privacy
// LTS is a DAG, so a finished script cannot be replayed without a reset —
// management-plane work a live fleet does not do per event). The aggregate
// events/sec across nodes is the paper-scale throughput claim; client-side
// frame encoding is measured separately by the codec benchmarks.
func BenchmarkClusterIngest(b *testing.B) {
	p, err := privascope.Generate(casestudy.Surgery())
	if err != nil {
		b.Fatal(err)
	}
	baseProfile := casestudy.PatientProfile()
	const users = 4096
	const frameEvents = 4096
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			names := make([]string, nodes)
			for i := range names {
				names[i] = fmt.Sprintf("node%d", i)
			}
			ring, err := cluster.NewRing(names, 0)
			if err != nil {
				b.Fatal(err)
			}
			nodeByName := make(map[string]*cluster.Node, nodes)
			var fleet []*cluster.Node
			for _, name := range names {
				// One monitor shard per node: the fleet's parallelism is the
				// node fan-out itself.
				n, err := cluster.NewNode(p, cluster.NodeConfig{
					Name:    name,
					Monitor: privascope.MonitorConfig{Shards: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer n.Close()
				nodeByName[name] = n
				fleet = append(fleet, n)
			}

			// Partition users over the ring, register them at their owner,
			// and pre-encode each node's generation as interleaved frames.
			profiles := make(map[string][]string, nodes) // node -> user IDs
			for u := 0; u < users; u++ {
				id := fmt.Sprintf("user-%d", u)
				owner := ring.Owner(id)
				profile := baseProfile
				profile.ID = id
				if err := nodeByName[owner].Monitor().RegisterUser(profile); err != nil {
					b.Fatal(err)
				}
				profiles[owner] = append(profiles[owner], id)
			}
			perNodeFrames := make(map[string][][]byte, nodes)
			eventsPerGen := 0
			for name, ids := range profiles {
				scripts := make([][]service.Event, len(ids))
				for i, id := range ids {
					scripts[i] = casestudy.MedicalServiceEvents(id)
				}
				// Round-robin across the node's users, like live traffic.
				var stream []service.Event
				for pos := 0; ; pos++ {
					appended := false
					for _, script := range scripts {
						if pos < len(script) {
							stream = append(stream, script[pos])
							appended = true
						}
					}
					if !appended {
						break
					}
				}
				eventsPerGen += len(stream)
				for start := 0; start < len(stream); start += frameEvents {
					end := min(start+frameEvents, len(stream))
					frame, err := cluster.EncodeFrame(stream[start:end])
					if err != nil {
						b.Fatal(err)
					}
					perNodeFrames[name] = append(perNodeFrames[name], frame)
				}
			}

			ctx := context.Background()
			runGeneration := func() {
				for name, frames := range perNodeFrames {
					node := nodeByName[name]
					for _, body := range frames {
						req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
						rec := httptest.NewRecorder()
						node.Handler().ServeHTTP(rec, req)
						if rec.Code != http.StatusAccepted {
							b.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
						}
					}
				}
				for _, n := range fleet {
					if err := n.Quiesce(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
			resetCursors := func() {
				for name, ids := range profiles {
					m := nodeByName[name].Monitor()
					for _, id := range ids {
						profile := baseProfile
						profile.ID = id
						if err := m.RegisterUser(profile); err != nil {
							b.Fatal(err)
						}
					}
				}
			}

			b.ReportAllocs()
			b.ResetTimer()
			total := 0
			for total < b.N {
				runGeneration()
				total += eventsPerGen
				b.StopTimer()
				resetCursors()
				b.StartTimer()
			}
			b.StopTimer()
			var stats privascope.MonitorIngestStats
			for _, n := range fleet {
				stats.Merge(n.Stats().Ingest)
			}
			if stats.Events != total || stats.Matched != total {
				b.Fatalf("fleet ingested %d events, matched %d; want %d of each (stats %+v)",
					stats.Events, stats.Matched, total, stats)
			}
			if seconds := b.Elapsed().Seconds(); seconds > 0 {
				b.ReportMetric(float64(total)/seconds, "events/sec")
			}
		})
	}
}
